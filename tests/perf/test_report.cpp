// RunReport artifact: JSON emission, syntax checking, schema validation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/runner.hpp"
#include "core/suite.hpp"
#include "core/zplot.hpp"
#include "perf/report.hpp"

namespace core = spechpc::core;
namespace mach = spechpc::mach;
namespace perf = spechpc::perf;

namespace {

perf::RunReport sample_report() {
  auto app = core::make_app("tealeaf", core::Workload::kTiny);
  app->set_measured_steps(2);
  app->set_warmup_steps(1);
  core::RunOptions opts;
  opts.regions = true;
  opts.trace = true;
  const auto res = core::run_benchmark(*app, mach::cluster_a(), 8, opts);
  return core::build_report(res, mach::cluster_a(), "tealeaf", "tiny");
}

TEST(Report, EmitsValidJsonWithEveryRequiredKey) {
  const std::string text = perf::to_json(sample_report());
  std::string err;
  EXPECT_TRUE(perf::is_valid_json(text, &err)) << err;
  EXPECT_TRUE(perf::validate_run_report_json(text, &err)) << err;
  for (const auto& key : perf::run_report_required_keys())
    EXPECT_NE(text.find("\"" + key + "\""), std::string::npos) << key;
}

TEST(Report, CarriesWorkloadRegionsAndEngineStats) {
  const auto rep = sample_report();
  EXPECT_EQ(rep.app, "tealeaf");
  EXPECT_EQ(rep.workload, "tiny");
  EXPECT_EQ(rep.nranks, 8);
  EXPECT_EQ(static_cast<int>(rep.ranks.size()), 8);
  EXPECT_GE(rep.regions.size(), 3u);  // root + >= 2 named regions
  EXPECT_FALSE(rep.series.empty());
  EXPECT_GT(rep.engine_stats.events_processed, 0u);
  const std::string text = perf::to_json(rep);
  EXPECT_NE(text.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(text.find("cg_spmv"), std::string::npos);
}

TEST(Report, ValidatorRejectsDocumentsMissingRequiredKeys) {
  std::string err;
  EXPECT_TRUE(perf::is_valid_json("{\"schema_version\": 1}", &err)) << err;
  EXPECT_FALSE(perf::validate_run_report_json("{\"schema_version\": 1}", &err));
  EXPECT_FALSE(err.empty());
}

TEST(Report, SchemaV2CarriesEnergyTimelineAndRegionEnergy) {
  const auto rep = sample_report();
  ASSERT_EQ(perf::kRunReportSchemaVersion, 4);
  // build_report populated the new sections (trace + regions were on).
  EXPECT_GT(rep.energy_timeline.wall_s(), 0.0);
  EXPECT_GT(rep.energy_timeline.total_energy_j(), 0.0);
  EXPECT_FALSE(rep.energy_timeline.samples.empty());
  EXPECT_GE(rep.region_energy.size(), 3u);
  double sum_j = 0.0;
  for (const auto& row : rep.region_energy) sum_j += row.total_j();
  EXPECT_NEAR(sum_j, rep.energy_timeline.total_energy_j(),
              1e-9 * rep.energy_timeline.total_energy_j());
  const std::string text = perf::to_json(rep);
  EXPECT_NE(text.find("\"schema_version\":4"), std::string::npos);
  EXPECT_NE(text.find("\"energy_timeline\""), std::string::npos);
  EXPECT_NE(text.find("\"region_energy\""), std::string::npos);
  EXPECT_NE(text.find("\"busy_simd_seconds\""), std::string::npos);
}

TEST(Report, SchemaV3CarriesWaitStatesAndCriticalPath) {
  auto app = core::make_app("tealeaf", core::Workload::kTiny);
  app->set_measured_steps(2);
  app->set_warmup_steps(1);
  core::RunOptions opts;
  opts.regions = true;
  opts.trace = true;
  opts.analyze = true;
  const auto res = core::run_benchmark(*app, mach::cluster_a(), 8, opts);
  const auto rep = core::build_report(res, mach::cluster_a(), "tealeaf",
                                      "tiny");
  ASSERT_EQ(rep.wait_states.size(), 8u);
  ASSERT_TRUE(rep.critical_path.computed);
  EXPECT_EQ(rep.critical_path.length_s, rep.critical_path.makespan_s);
  // Region ids were resolved to the engine's region paths.
  for (const auto& row : rep.critical_path.by_region)
    EXPECT_FALSE(row.path.empty());
  const std::string text = perf::to_json(rep);
  std::string err;
  EXPECT_TRUE(perf::validate_run_report_json(text, &err)) << err;
  EXPECT_NE(text.find("\"wait_states\""), std::string::npos);
  EXPECT_NE(text.find("\"critical_path\""), std::string::npos);
  EXPECT_NE(text.find("\"computed\":true"), std::string::npos);
  EXPECT_NE(text.find("\"partition_profile\""), std::string::npos);
  EXPECT_NE(text.find("\"segments_total\""), std::string::npos);

  // Without --analyze the sections are still present (the validator demands
  // every key) but critical_path says so explicitly.
  const std::string plain = perf::to_json(sample_report());
  EXPECT_TRUE(perf::validate_run_report_json(plain, &err)) << err;
  EXPECT_NE(plain.find("\"computed\":false"), std::string::npos);
  EXPECT_NE(plain.find("\"wait_states\""), std::string::npos);
}

TEST(Report, ValidatorRejectsPreviousSchemaVersion) {
  // A document tagged with the previous schema version must be rejected on
  // the version check alone, whatever sections it carries.
  std::string v1 = perf::to_json(sample_report());
  const auto pos = v1.find("\"schema_version\":4");
  ASSERT_NE(pos, std::string::npos);
  v1.replace(pos, 18, "\"schema_version\":3");
  std::string err;
  EXPECT_TRUE(perf::is_valid_json(v1, &err)) << err;
  EXPECT_FALSE(perf::validate_run_report_json(v1, &err));
  EXPECT_NE(err.find("schema_version"), std::string::npos) << err;
}

TEST(Report, ZplotValidatorChecksShapeAndVersion) {
  core::ZplotOptions opts;
  opts.core_counts = {1, 2};
  opts.measured_steps = 2;
  const auto z = core::zplot_sweep("lbm", mach::cluster_a(), opts);
  const std::string text = core::to_json(z);
  std::string err;
  EXPECT_TRUE(perf::validate_zplot_json(text, &err)) << err;
  // A run report is not a Z-plot artifact and vice versa.
  EXPECT_FALSE(perf::validate_zplot_json(perf::to_json(sample_report())));
  EXPECT_FALSE(perf::validate_run_report_json(text));
}

TEST(Report, SyntaxCheckerAcceptsWellFormedJson) {
  for (const char* good :
       {"{}", "[]", "null", "true", "-12.5e-3",
        "{\"a\": [1, 2.5, \"x\\n\", false, null], \"b\": {\"c\": []}}"}) {
    std::string err;
    EXPECT_TRUE(perf::is_valid_json(good, &err)) << good << ": " << err;
  }
}

TEST(Report, SyntaxCheckerRejectsMalformedJson) {
  for (const char* bad : {"", "{", "{\"a\":}", "[1,]", "{} trailing", "nan",
                          "{'a': 1}", "{\"a\" 1}", "[1 2]"}) {
    EXPECT_FALSE(perf::is_valid_json(bad)) << bad;
  }
}

TEST(Report, WriteJsonRoundTripsThroughDisk) {
  const std::string path = "report_roundtrip_test.json";
  perf::write_json(sample_report(), path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::ostringstream buf;
  buf << f.rdbuf();
  std::string err;
  EXPECT_TRUE(perf::validate_run_report_json(buf.str(), &err)) << err;
  std::remove(path.c_str());
}

}  // namespace
