// Fuzz-ish robustness of the RunReport emitter and validator: truncated
// documents, malformed syntax, non-finite numbers, hostile strings, and deep
// nesting must be handled without crashes or undefined behavior.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "perf/report.hpp"
#include "util/json.hpp"

namespace perf = spechpc::perf;

namespace {

perf::RunReport small_report() {
  perf::RunReport r;
  r.app = "lbm";
  r.workload = "tiny";
  r.nranks = 2;
  r.nodes = 1;
  r.steps = 3;
  r.cluster = "ClusterA";
  r.ranks.resize(2);
  return r;
}

TEST(ReportFuzz, EveryTruncationOfARealReportIsRejectedWithoutCrashing) {
  const std::string doc = perf::to_json(small_report());
  ASSERT_TRUE(perf::is_valid_json(doc));
  // A proper prefix of a JSON object is never a complete document (the
  // closing brace is the last byte); the checker must say so, not crash.
  for (std::size_t len = 0; len < doc.size(); ++len) {
    std::string err;
    EXPECT_FALSE(perf::is_valid_json(doc.substr(0, len), &err))
        << "accepted truncation at " << len;
    EXPECT_FALSE(err.empty());
  }
}

TEST(ReportFuzz, MalformedDocumentsAreRejected) {
  const char* bad[] = {
      "",        "{",         "}",          "[1,]",       "{\"a\":}",
      "nul",     "tru",       "falsey",     "{\"a\" 1}",  "[1 2]",
      "\"open",  "{\"a\":1,}", "[],[]",     "{\"a\":1}}", "nan",
      "Infinity"};
  for (const char* doc : bad) {
    std::string err;
    EXPECT_FALSE(perf::is_valid_json(doc, &err)) << "accepted: " << doc;
  }
}

TEST(ReportFuzz, DeepNestingIsRejectedNotOverflowed) {
  // Far beyond the checker's depth bound: must fail cleanly, not smash the
  // stack (ASan/UBSan builds verify the "cleanly" part).
  const std::string deep_arrays(10000, '[');
  EXPECT_FALSE(perf::is_valid_json(deep_arrays));
  std::string deep_objects;
  for (int i = 0; i < 5000; ++i) deep_objects += "{\"k\":";
  EXPECT_FALSE(perf::is_valid_json(deep_objects));
}

TEST(ReportFuzz, NonFiniteNumbersAreEmittedAsNull) {
  perf::RunReport r = small_report();
  r.metrics.wall_s = std::numeric_limits<double>::quiet_NaN();
  r.peak_node_flops = std::numeric_limits<double>::infinity();
  r.sat_bw_per_node_Bps = -std::numeric_limits<double>::infinity();
  const std::string doc = perf::to_json(r);
  // JSON has no NaN/Inf: the emitter must not produce invalid tokens.
  EXPECT_TRUE(perf::is_valid_json(doc)) << doc;
  EXPECT_EQ(doc.find("nan"), std::string::npos);
  EXPECT_EQ(doc.find("inf"), std::string::npos);
  EXPECT_NE(doc.find("\"wall_s\":null"), std::string::npos);
}

TEST(ReportFuzz, HostileStringsSurviveEveryEscapePath) {
  perf::RunReport r = small_report();
  r.app = "quote\" backslash\\ newline\n tab\t bell\x07 del\x1f";
  r.workload = std::string("embedded\0nul", 12);
  r.cluster = "ascii-only";
  const std::string doc = perf::to_json(r);
  EXPECT_TRUE(perf::is_valid_json(doc)) << doc;
  // Control characters must leave as \uXXXX escapes, never raw bytes.
  EXPECT_EQ(doc.find('\x07'), std::string::npos);
  EXPECT_NE(doc.find("\\u0007"), std::string::npos);
  EXPECT_NE(doc.find("\\u0000"), std::string::npos);
  EXPECT_NE(doc.find("\\n"), std::string::npos);
  EXPECT_NE(doc.find("\\\""), std::string::npos);
}

TEST(ReportFuzz, ValidatorRequiresEveryTopLevelKey) {
  const std::string doc = perf::to_json(small_report());
  ASSERT_TRUE(perf::validate_run_report_json(doc));
  for (const std::string& key : perf::run_report_required_keys()) {
    // Knock the key out by renaming every quoted occurrence (some keys, like
    // "workload", double as a field name); validation must name the casualty.
    std::string broken = doc;
    const std::string quoted = "\"" + key + "\"";
    std::size_t at = broken.find(quoted);
    ASSERT_NE(at, std::string::npos) << key;
    for (; at != std::string::npos; at = broken.find(quoted, at))
      broken[at + 1] = 'X';
    std::string err;
    EXPECT_FALSE(perf::validate_run_report_json(broken, &err)) << key;
    EXPECT_NE(err.find(key), std::string::npos) << err;
  }
}

TEST(ReportFuzz, ResilienceSectionRoundTripsThroughTheValidator) {
  perf::RunReport r = small_report();
  r.resilience.enabled = true;
  r.resilience.plan_json = "{\"seed\": 3}";
  r.resilience.log.messages_dropped = 2;
  r.resilience.log.events.push_back(
      {0.5, spechpc::sim::FaultKind::kDrop, -1, 0, 1, 9, 64.0, 0});
  spechpc::sim::StallDiagnosis d;
  d.nranks = 2;
  d.blocked_ranks = 1;
  d.recvs.push_back({1, 0, 8, 0.25});
  d.lost_messages = 1;
  r.resilience.stall = d;
  const std::string doc = perf::to_json(r);
  EXPECT_TRUE(perf::validate_run_report_json(doc)) << doc;
  EXPECT_NE(doc.find("\"resilience\""), std::string::npos);
  EXPECT_NE(doc.find("\"drop\""), std::string::npos);
  EXPECT_NE(doc.find("\"blocked_recvs\""), std::string::npos);
}

TEST(ReportFuzz, ValidatorErrorsCarryAnOffset) {
  std::string err;
  EXPECT_FALSE(perf::is_valid_json("{\"a\": 1,, }", &err));
  EXPECT_NE(err.find("offset"), std::string::npos);
}

TEST(ReportFuzz, OversizedDocumentsAreRejectedBySizeNotParsed) {
  // One byte past the shared 64 MiB input cap.  The padding is whitespace on
  // an otherwise valid document, so acceptance would mean the size gate is
  // missing -- and the error must say "limit", not a parse diagnostic.
  std::string doc = perf::to_json(small_report());
  ASSERT_TRUE(perf::is_valid_json(doc));
  doc.append(spechpc::util::kMaxJsonBytes + 1 - doc.size(), ' ');
  std::string err;
  EXPECT_FALSE(perf::is_valid_json(doc, &err));
  EXPECT_NE(err.find("byte limit"), std::string::npos) << err;
}

}  // namespace
