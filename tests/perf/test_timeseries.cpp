// Time-resolved monitoring and trace export.
#include <gtest/gtest.h>

#include <sstream>

#include "perf/perf.hpp"
#include "simmpi/simmpi.hpp"

namespace sim = spechpc::sim;
namespace perf = spechpc::perf;

namespace {

sim::Timeline two_phase_timeline() {
  sim::Timeline tl;
  // Rank 0: 1 s compute-bound phase, then 1 s memory-bound phase.
  tl.record({0, 0.0, 1.0, sim::Activity::kCompute, "flops", 100e9, 1e9});
  tl.record({0, 1.0, 2.0, sim::Activity::kCompute, "stream", 1e9, 50e9});
  // Rank 1 spends the second half in MPI.
  tl.record({1, 0.0, 1.0, sim::Activity::kCompute, "flops", 100e9, 1e9});
  tl.record({1, 1.0, 2.0, sim::Activity::kAllreduce, "MPI_Allreduce"});
  return tl;
}

TEST(TimeSeries, BucketsPartitionResources) {
  const auto tl = two_phase_timeline();
  const auto buckets = perf::time_series(tl, 2);
  ASSERT_EQ(buckets.size(), 2u);
  // First second: both ranks at high intensity.
  EXPECT_NEAR(buckets[0].flops, 200e9, 1e6);
  EXPECT_NEAR(buckets[0].mem_bytes, 2e9, 1e3);
  EXPECT_GT(buckets[0].intensity(), 50.0);
  // Second second: the streaming phase dominates the traffic.
  EXPECT_NEAR(buckets[1].mem_bytes, 50e9, 1e6);
  EXPECT_LT(buckets[1].intensity(), 0.1);
  EXPECT_NEAR(buckets[1].mpi_fraction(), 0.5, 1e-9);
  EXPECT_NEAR(buckets[0].mpi_fraction(), 0.0, 1e-9);
}

TEST(TimeSeries, ResourceTotalsConserved) {
  const auto tl = two_phase_timeline();
  for (int nb : {1, 2, 3, 7, 16}) {
    double flops = 0.0, bytes = 0.0;
    for (const auto& b : perf::time_series(tl, nb)) {
      flops += b.flops;
      bytes += b.mem_bytes;
    }
    EXPECT_NEAR(flops, 201e9, 1e7) << nb;
    EXPECT_NEAR(bytes, 52e9, 1e6) << nb;
  }
}

TEST(TimeSeries, RooflineTrajectoryMovesWithThePhases) {
  const auto pts = perf::roofline_trajectory(two_phase_timeline(), 2);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_GT(pts[0].intensity, pts[1].intensity);  // compute -> memory bound
  EXPECT_GT(pts[0].flop_rate, pts[1].flop_rate);
}

TEST(TimeSeries, EngineTraceCarriesResources) {
  sim::EngineConfig cfg;
  cfg.nranks = 1;
  cfg.enable_trace = true;
  sim::Engine eng(std::move(cfg));
  eng.run([](sim::Comm& c) -> sim::Task<> {
    sim::KernelWork w;
    w.flops_scalar = 2e9;
    w.traffic = {3e9, 0, 0};
    w.label = "k";
    co_await c.compute(w);
  });
  const auto& iv = eng.timeline().intervals().front();
  EXPECT_DOUBLE_EQ(iv.flops, 2e9);
  EXPECT_DOUBLE_EQ(iv.mem_bytes, 3e9);
  const auto pts = perf::roofline_trajectory(eng.timeline(), 1);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_NEAR(pts[0].intensity, 2.0 / 3.0, 1e-12);
}

TEST(TimeSeries, RejectsBadBucketCount) {
  EXPECT_THROW(perf::time_series(sim::Timeline{}, 0), std::invalid_argument);
}

TEST(TraceExport, CsvHasHeaderAndRows) {
  const auto tl = two_phase_timeline();
  std::ostringstream os;
  perf::export_csv(tl, os);
  const std::string s = os.str();
  EXPECT_NE(s.find("rank,t_begin,t_end,activity,label,flops,mem_bytes"),
            std::string::npos);
  EXPECT_NE(s.find("0,0,1,compute,flops,1e+11,1e+09"), std::string::npos);
  EXPECT_NE(s.find("MPI_Allreduce"), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 5);  // header + 4 rows
}

TEST(TraceExport, ChromeTraceIsWellFormedIsh) {
  const auto tl = two_phase_timeline();
  std::ostringstream os;
  perf::export_chrome_trace(tl, os);
  const std::string s = os.str();
  EXPECT_EQ(s.front(), '{');
  EXPECT_EQ(s.back(), '}');
  EXPECT_NE(s.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(s.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(s.find("\"dur\":1e+06"), std::string::npos);  // 1 s = 1e6 us
  // Balanced braces/brackets.
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
            std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['),
            std::count(s.begin(), s.end(), ']'));
}

TEST(TraceExport, EscapesSpecialCharacters) {
  sim::Timeline tl;
  tl.record({0, 0.0, 1.0, sim::Activity::kCompute, "k\"ernel\\x", 1.0, 1.0});
  std::ostringstream os;
  perf::export_chrome_trace(tl, os);
  EXPECT_NE(os.str().find("k\\\"ernel\\\\x"), std::string::npos);
}

}  // namespace
