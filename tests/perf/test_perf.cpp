// Perf utilities: metrics collection, run statistics, tables, timelines.
#include <gtest/gtest.h>

#include <sstream>

#include "perf/perf.hpp"
#include "simmpi/simmpi.hpp"

namespace sim = spechpc::sim;
namespace perf = spechpc::perf;

namespace {

TEST(Metrics, CollectAggregatesRun) {
  sim::EngineConfig cfg;
  cfg.nranks = 4;
  sim::Engine eng(cfg);
  eng.run([](sim::Comm& c) -> sim::Task<> {
    sim::KernelWork w;
    w.flops_simd = 8e9;
    w.flops_scalar = 2e9;
    w.traffic = {1e9, 2e9, 3e9};
    w.label = "k";
    co_await c.compute(w);
    co_await c.barrier();
  });
  const auto m = perf::collect(eng);
  EXPECT_EQ(m.nranks, 4);
  EXPECT_DOUBLE_EQ(m.flops_total, 4 * 10e9);
  EXPECT_DOUBLE_EQ(m.flops_simd, 4 * 8e9);
  EXPECT_NEAR(m.vectorization_ratio(), 0.8, 1e-12);
  EXPECT_DOUBLE_EQ(m.mem_bytes, 4e9);
  EXPECT_DOUBLE_EQ(m.l3_bytes, 8e9);
  EXPECT_DOUBLE_EQ(m.l2_bytes, 12e9);
  EXPECT_GT(m.performance(), 0.0);
  EXPECT_GT(m.performance_simd(), 0.0);
  EXPECT_LT(m.performance_simd(), m.performance());
}

TEST(Stats, MinMaxMeanStd) {
  perf::RunStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), std::logic_error);
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 1.0);
  EXPECT_EQ(s.count(), 3u);
}

TEST(Tables, AlignedAndCsvOutput) {
  perf::Table t({"name", "value"});
  t.add_row({"alpha", perf::Table::num(1.5)});
  t.add_row({"b", perf::Table::num(2.0)});
  std::ostringstream text, csv;
  t.print(text);
  t.print_csv(csv);
  EXPECT_NE(text.str().find("| alpha |"), std::string::npos);
  EXPECT_NE(text.str().find("1.5 |"), std::string::npos);
  EXPECT_NE(csv.str().find("alpha,1.5"), std::string::npos);
  EXPECT_NE(csv.str().find("b,2"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one-cell"}), std::invalid_argument);
  EXPECT_THROW(perf::Table({}), std::invalid_argument);
}

TEST(Tables, NumberFormatting) {
  EXPECT_EQ(perf::Table::num(1.0), "1");
  EXPECT_EQ(perf::Table::num(1.25), "1.25");
  EXPECT_EQ(perf::Table::num(1.2345, 2), "1.23");
  EXPECT_EQ(perf::Table::num(0.5, 1), "0.5");
}

TEST(Timeline, ActivityFractions) {
  sim::Timeline tl;
  tl.record({0, 0.0, 3.0, sim::Activity::kCompute, "k"});
  tl.record({0, 3.0, 4.0, sim::Activity::kRecv, "recv"});
  tl.record({1, 0.0, 2.0, sim::Activity::kBarrier, "b"});
  const auto all = perf::activity_fractions(tl);
  EXPECT_NEAR(all.at(sim::Activity::kCompute), 0.5, 1e-12);
  EXPECT_NEAR(all.at(sim::Activity::kRecv), 1.0 / 6.0, 1e-12);
  const auto r0 = perf::activity_fractions(tl, 0);
  EXPECT_NEAR(r0.at(sim::Activity::kCompute), 0.75, 1e-12);
  EXPECT_NEAR(r0.at(sim::Activity::kRecv), 0.25, 1e-12);
}

TEST(Timeline, AsciiRenderShowsDominantActivity) {
  sim::Timeline tl;
  tl.record({0, 0.0, 1.0, sim::Activity::kCompute, "k"});
  tl.record({0, 1.0, 2.0, sim::Activity::kRecv, "recv"});
  tl.record({1, 0.0, 2.0, sim::Activity::kSend, "send"});
  const std::string s = perf::render_ascii(tl, 2, /*columns=*/10);
  // Rank 0: first half compute '#', second half recv 'R'; rank 1 all 'S'.
  EXPECT_NE(s.find("#####RRRRR"), std::string::npos);
  EXPECT_NE(s.find("SSSSSSSSSS"), std::string::npos);
}

TEST(Timeline, RankWindowRendering) {
  sim::Timeline tl;
  for (int r = 0; r < 8; ++r)
    tl.record({r, 0.0, 1.0, sim::Activity::kCompute, "k"});
  const std::string s = perf::render_ascii_ranks(tl, 2, 3, 4);
  // Exactly two rows (ranks 2 and 3).
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
  EXPECT_NE(s.find("r2"), std::string::npos);
  EXPECT_NE(s.find("r3"), std::string::npos);
  EXPECT_EQ(s.find("r4"), std::string::npos);
}

TEST(Timeline, EngineTraceFeedsRenderer) {
  sim::EngineConfig cfg;
  cfg.nranks = 2;
  cfg.enable_trace = true;
  sim::Engine eng(cfg);
  eng.run([](sim::Comm& c) -> sim::Task<> {
    if (c.rank() == 0) {
      co_await c.delay(1.0, "work");
      co_await c.send_bytes(1, 0, 8.0);
    } else {
      co_await c.recv_bytes(0, 0);
    }
  });
  const auto fr = perf::activity_fractions(eng.timeline(), 1);
  EXPECT_GT(fr.at(sim::Activity::kRecv), 0.9);  // rank 1 mostly waiting
}

}  // namespace
