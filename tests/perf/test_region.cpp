// Likwid-style region profiling: exclusive attribution, conservation
// against the whole-run counters, nesting, and bit-identity when disabled.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/runner.hpp"
#include "core/suite.hpp"
#include "perf/region.hpp"

namespace core = spechpc::core;
namespace mach = spechpc::mach;
namespace perf = spechpc::perf;
namespace sim = spechpc::sim;

namespace {

core::RunResult run_app(const std::string& name, int nranks, bool regions,
                        int steps = 2) {
  auto app = core::make_app(name, core::Workload::kTiny);
  app->set_measured_steps(steps);
  app->set_warmup_steps(1);
  core::RunOptions opts;
  opts.regions = regions;
  return core::run_benchmark(*app, mach::cluster_a(), nranks, opts);
}

void expect_rel(double got, double want, const char* what) {
  EXPECT_NEAR(got, want, 1e-9 * std::max(1.0, std::abs(want))) << what;
}

// The per-rank sum over all regions (including the "(untracked)" root) must
// reproduce the rank's whole-run counters: region windows partition the run.
void check_conservation(const std::string& name, int nranks) {
  const auto res = run_app(name, nranks, true);
  const auto& e = res.engine();
  ASSERT_TRUE(e.regions_enabled());
  ASSERT_GE(e.region_count(), 3) << name;  // root + >= 2 named regions
  for (int rank = 0; rank < nranks; ++rank) {
    sim::RankCounters sum;
    for (int id = 0; id < e.region_count(); ++id)
      sum += e.region_counters(id, rank);
    const auto& whole = e.counters(rank);
    expect_rel(sum.total_flops(), whole.total_flops(), "flops");
    expect_rel(sum.traffic.mem_bytes, whole.traffic.mem_bytes, "mem_bytes");
    expect_rel(sum.total_time(), whole.total_time(), "time");
    expect_rel(sum.bytes_sent, whole.bytes_sent, "bytes_sent");
    EXPECT_EQ(sum.messages_received, whole.messages_received) << rank;
    EXPECT_EQ(sum.collectives, whole.collectives) << rank;
  }
}

TEST(Region, TealeafCountersAreConserved) { check_conservation("tealeaf", 8); }

TEST(Region, LbmCountersAreConserved) { check_conservation("lbm", 8); }

TEST(Region, EverySuiteAppEmitsAtLeastTwoNamedRegions) {
  for (const auto& entry : core::suite()) {
    const auto res = run_app(std::string(entry.info.name), 8, true, 1);
    // Node 0 is the implicit root, so >= 3 nodes means >= 2 named regions.
    EXPECT_GE(res.engine().region_count(), 3) << entry.info.name;
    for (int id = 1; id < res.engine().region_count(); ++id) {
      std::int64_t visits = 0;
      for (int r = 0; r < 8; ++r)
        visits += res.engine().region_visits(id, r);
      EXPECT_GT(visits, 0) << entry.info.name << " region "
                           << res.engine().region_node(id).name;
    }
  }
}

TEST(Region, ProfilingIsBitIdenticalToUninstrumentedRuns) {
  for (const char* name : {"lbm", "minisweep"}) {
    const auto off = run_app(name, 8, false);
    const auto on = run_app(name, 8, true);
    EXPECT_EQ(off.wall_s(), on.wall_s()) << name;
    for (int r = 0; r < 8; ++r) {
      EXPECT_EQ(off.engine().counters(r).total_flops(),
                on.engine().counters(r).total_flops())
          << name << " rank " << r;
      EXPECT_EQ(off.engine().counters(r).total_time(),
                on.engine().counters(r).total_time())
          << name << " rank " << r;
    }
  }
}

TEST(Region, NestedGuardsFormSlashJoinedPaths) {
  // minisweep opens sweep_comm / sweep_block inside each octant region.
  const auto res = run_app("minisweep", 8, true, 1);
  const auto rows = perf::region_rows(res.engine());
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows.front().id, 0);
  EXPECT_EQ(rows.front().name, "(untracked)");
  EXPECT_EQ(rows.front().depth, 0);
  bool found_nested = false;
  for (const auto& row : rows)
    if (row.depth >= 2) {
      found_nested = true;
      EXPECT_NE(row.path.find('/'), std::string::npos) << row.path;
      EXPECT_NE(row.path.find(row.name), std::string::npos) << row.path;
    }
  EXPECT_TRUE(found_nested);
}

TEST(Region, RowsAggregateWhatTheEngineMeasured) {
  const int nranks = 8;
  const auto res = run_app("tealeaf", nranks, true);
  const auto rows = perf::region_rows(res.engine());
  double flops = 0.0, time_s = 0.0;
  for (const auto& row : rows) {
    flops += row.flops;
    time_s += row.time_s;
    EXPECT_GE(row.mpi_fraction(), 0.0) << row.path;
    EXPECT_LE(row.mpi_fraction(), 1.0 + 1e-12) << row.path;
  }
  double want_flops = 0.0, want_time = 0.0;
  for (int r = 0; r < nranks; ++r) {
    want_flops += res.engine().counters(r).total_flops();
    want_time += res.engine().counters(r).total_time();
  }
  expect_rel(flops, want_flops, "summed flops");
  expect_rel(time_s, want_time, "summed time");
}

TEST(Region, RooflinePlacementIsBounded) {
  const auto res = run_app("tealeaf", 8, true);
  const auto pts = perf::region_roofline(res.engine(), mach::cluster_a(), 1);
  ASSERT_FALSE(pts.empty());
  for (const auto& p : pts) {
    EXPECT_GT(p.attainable, 0.0) << p.path;
    EXPECT_GT(p.flop_rate, 0.0) << p.path;
    // The compute model never beats the machine's own ceiling.
    EXPECT_LE(p.efficiency(), 1.0 + 1e-9) << p.path;
  }
}

TEST(Region, DisabledEngineIgnoresMarkers) {
  const auto res = run_app("tealeaf", 4, false);
  EXPECT_FALSE(res.engine().regions_enabled());
  EXPECT_EQ(res.engine().region_count(), 0);  // no tree is ever built
}

}  // namespace
