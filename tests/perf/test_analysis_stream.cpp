// Streaming event-graph construction invariants (see simmpi/waitgraph.hpp
// and engine.cpp GraphStream): moving the per-rank index construction and
// slice coalescing onto a dedicated analysis thread must be invisible --
// the retained graph, the wait-state rows and the critical path are bitwise
// identical to inline (batch) recording, on clean runs and under the PR 3
// drop/crash fault plans alike.  The analysis post-pass itself must be
// thread-count invariant, and the bounded SPSC queue that feeds the
// recording thread must stall the producer instead of dropping or
// reordering slices.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/spechpc.hpp"
#include "machine/topology.hpp"
#include "perf/critpath.hpp"
#include "perf/waitstate.hpp"
#include "resilience/resilience.hpp"
#include "simmpi/queues.hpp"

namespace core = spechpc::core;
namespace mach = spechpc::mach;
namespace perf = spechpc::perf;
namespace res = spechpc::resilience;
namespace sim = spechpc::sim;

namespace {

/// Forwards the cluster's real network costs but reports no lookahead
/// floor, forcing the serial engine -- the only configuration where the
/// dedicated recording thread engages (P == 1).
class SerialReferenceNet final : public sim::NetworkModel {
 public:
  explicit SerialReferenceNet(const sim::NetworkModel* inner)
      : inner_(inner) {}
  sim::TransferCost transfer(int src, int dst, const sim::Placement& p,
                             double bytes) const override {
    return inner_->transfer(src, dst, p, bytes);
  }
  double control_latency(int src, int dst,
                         const sim::Placement& p) const override {
    return inner_->control_latency(src, dst, p);
  }

 private:
  const sim::NetworkModel* inner_;
};

/// Owning field-by-field copy of every retained row (rank-concatenated),
/// plus the per-rank event counts, so two engine runs can be compared after
/// both engines are gone.
struct GraphDump {
  std::vector<double> t0, t1, dep_time, dep_margin, fault_s;
  std::vector<std::uint16_t> region;
  std::vector<std::uint8_t> tag;
  std::vector<std::uint32_t> fault_event;
  std::vector<std::int32_t> dep_rank;
  std::vector<std::uint64_t> rank_base;
  std::uint64_t slices = 0;

  bool operator==(const GraphDump&) const = default;
};

GraphDump dump_graph(const sim::EventGraphView& v) {
  GraphDump d;
  for (const sim::EventGraph* g : v.ranks) {
    for (const sim::PackedEvent& e : g->events()) {
      d.t0.push_back(e.t0);
      d.t1.push_back(e.t1);
      d.region.push_back(e.region);
      d.tag.push_back(e.tag);
    }
    for (const sim::PackedDep& dep : g->dep_rows()) {
      d.dep_rank.push_back(dep.rank);
      d.dep_time.push_back(dep.time);
      d.dep_margin.push_back(dep.margin);
    }
    for (const sim::PackedFault& f : g->fault_rows()) {
      d.fault_event.push_back(f.event);
      d.fault_s.push_back(f.seconds);
    }
    d.slices += g->slices();
  }
  d.rank_base = v.rank_base;
  return d;
}

struct Snapshot {
  int partitions = 0;
  double elapsed = 0.0;
  sim::EngineStats stats;
  std::vector<perf::WaitStateRow> waits;
  perf::CriticalPath cp;
  GraphDump dump;
};

Snapshot serial_run(const std::string& app_name, bool stream,
                    const res::FaultPlan* plan = nullptr) {
  auto app = core::make_app(app_name, core::Workload::kTiny);
  app->set_measured_steps(2);
  app->set_warmup_steps(1);
  const mach::ClusterSpec cluster = mach::cluster_a();
  const mach::RooflineComputeModel compute(cluster);
  const mach::HdrNetworkModel network(cluster.net);
  const SerialReferenceNet serial_net(&network);
  std::optional<res::PlanFaultInjector> injector;
  sim::EngineConfig cfg;
  cfg.placement = mach::block_placement_on_nodes(cluster, 16, 2);
  cfg.nranks = cfg.placement.nranks();
  cfg.compute = &compute;
  cfg.network = &serial_net;
  cfg.enable_graph = true;
  cfg.stream_graph = stream;
  cfg.graph_queue_chunks = 2;  // tiny queue: the run exercises backpressure
  if (plan) {
    app->set_fault_plan(plan);
    injector.emplace(*plan);
    cfg.faults = &*injector;
    cfg.watchdog.max_retries = 12;
  }
  sim::Engine engine(std::move(cfg));
  engine.run(
      [&](sim::Comm& c) -> sim::Task<> { return app->rank_main(c); });
  Snapshot snap;
  snap.partitions = engine.stats().partition_count;
  snap.elapsed = engine.elapsed();
  snap.stats = engine.stats();
  snap.waits = perf::wait_state_rows(engine);
  snap.cp = perf::analyze_critical_path(engine.event_graph(), engine.nranks(),
                                        engine.elapsed());
  snap.dump = dump_graph(engine.event_graph());
  return snap;
}

void expect_identical(const Snapshot& batch, const Snapshot& streamed,
                      const std::string& label) {
  ASSERT_EQ(batch.partitions, 1) << label;
  ASSERT_EQ(streamed.partitions, 1) << label;
  EXPECT_EQ(batch.elapsed, streamed.elapsed) << label;
  // The retained graph itself: every column, every per-rank index entry.
  EXPECT_TRUE(batch.dump == streamed.dump) << label;
  EXPECT_EQ(batch.stats.graph_events, streamed.stats.graph_events) << label;
  EXPECT_EQ(batch.stats.graph_slices, streamed.stats.graph_slices) << label;
  EXPECT_EQ(batch.stats.graph_deps, streamed.stats.graph_deps) << label;
  EXPECT_EQ(batch.stats.graph_bytes, streamed.stats.graph_bytes) << label;
  // ...and the analysis derived from it.
  ASSERT_EQ(batch.waits.size(), streamed.waits.size()) << label;
  for (std::size_t r = 0; r < batch.waits.size(); ++r) {
    EXPECT_EQ(batch.waits[r].late_sender_s, streamed.waits[r].late_sender_s)
        << label << " rank " << r;
    EXPECT_EQ(batch.waits[r].fault_stall_s, streamed.waits[r].fault_stall_s)
        << label << " rank " << r;
    EXPECT_EQ(batch.waits[r].mpi_s, streamed.waits[r].mpi_s)
        << label << " rank " << r;
  }
  EXPECT_EQ(batch.cp.length_s, streamed.cp.length_s) << label;
  ASSERT_EQ(batch.cp.segments.size(), streamed.cp.segments.size()) << label;
  for (std::size_t i = 0; i < batch.cp.segments.size(); ++i) {
    EXPECT_EQ(batch.cp.segments[i].rank, streamed.cp.segments[i].rank)
        << label << " seg " << i;
    EXPECT_EQ(batch.cp.segments[i].t_begin, streamed.cp.segments[i].t_begin)
        << label << " seg " << i;
    EXPECT_EQ(batch.cp.segments[i].t_end, streamed.cp.segments[i].t_end)
        << label << " seg " << i;
  }
}

TEST(StreamingGraph, MatchesBatchRecordingBitwise) {
  for (const char* app : {"lbm", "minisweep", "pot3d"}) {
    const Snapshot batch = serial_run(app, /*stream=*/false);
    const Snapshot streamed = serial_run(app, /*stream=*/true);
    ASSERT_GT(batch.stats.graph_events, 0u) << app;
    expect_identical(batch, streamed, app);
  }
}

TEST(StreamingGraph, MatchesBatchUnderDropAndCrashFaultPlans) {
  const res::FaultPlan drop_plan =
      res::FaultPlan::parse(R"({"messages": [{"drop_prob": 0.25}]})");
  const res::FaultPlan crash_plan = res::FaultPlan::parse(R"({
    "crashes": [{"rank": 2, "time": 1e-9}],
    "checkpoint": {"interval_steps": 2, "state_bytes_per_rank": 1e6,
                   "restart_delay_s": 1e-3}
  })");
  {
    const Snapshot batch = serial_run("lbm", false, &drop_plan);
    const Snapshot streamed = serial_run("lbm", true, &drop_plan);
    // Drops must actually have fired (fault-stall seconds retained)...
    ASSERT_FALSE(batch.dump.fault_event.empty());
    expect_identical(batch, streamed, "lbm+drops");
  }
  {
    const Snapshot batch = serial_run("lbm", false, &crash_plan);
    const Snapshot streamed = serial_run("lbm", true, &crash_plan);
    expect_identical(batch, streamed, "lbm+crash");
  }
}

// --- post-pass thread-count invariance -----------------------------------

TEST(AnalysisThreads, PostPassIsThreadCountInvariant) {
  auto app = core::make_app("minisweep", core::Workload::kTiny);
  app->set_measured_steps(2);
  app->set_warmup_steps(1);
  core::RunOptions opts;
  opts.analyze = true;
  const mach::ClusterSpec cluster = mach::cluster_a();
  const core::RunResult r = core::run_benchmark(
      *app, cluster, mach::block_placement_on_nodes(cluster, 16, 2), opts);
  const sim::Engine& engine = r.engine();
  ASSERT_EQ(engine.stats().partition_count, 2);  // the partitioned engine
  const perf::CriticalPath ref = perf::analyze_critical_path(
      engine.event_graph(), engine.nranks(), engine.elapsed(), 1);
  const auto ref_rows = perf::wait_state_rows(engine, 1);
  for (int threads : {2, 3, 4, 8}) {
    const perf::CriticalPath cp = perf::analyze_critical_path(
        engine.event_graph(), engine.nranks(), engine.elapsed(), threads);
    EXPECT_EQ(cp.length_s, ref.length_s) << threads;
    EXPECT_EQ(cp.makespan_s, ref.makespan_s) << threads;
    ASSERT_EQ(cp.segments.size(), ref.segments.size()) << threads;
    for (std::size_t i = 0; i < ref.segments.size(); ++i) {
      EXPECT_EQ(cp.segments[i].rank, ref.segments[i].rank)
          << threads << " seg " << i;
      EXPECT_EQ(cp.segments[i].t_begin, ref.segments[i].t_begin)
          << threads << " seg " << i;
      EXPECT_EQ(cp.segments[i].t_end, ref.segments[i].t_end)
          << threads << " seg " << i;
    }
    ASSERT_EQ(cp.by_rank.size(), ref.by_rank.size()) << threads;
    for (std::size_t i = 0; i < ref.by_rank.size(); ++i) {
      EXPECT_EQ(cp.by_rank[i].cp_s, ref.by_rank[i].cp_s)
          << threads << " rank " << i;
      EXPECT_EQ(cp.by_rank[i].slack_s, ref.by_rank[i].slack_s)
          << threads << " rank " << i;
    }
    ASSERT_EQ(cp.by_region.size(), ref.by_region.size()) << threads;
    for (std::size_t i = 0; i < ref.by_region.size(); ++i) {
      EXPECT_EQ(cp.by_region[i].region, ref.by_region[i].region)
          << threads << " region " << i;
      EXPECT_EQ(cp.by_region[i].cp_s, ref.by_region[i].cp_s)
          << threads << " region " << i;
      EXPECT_EQ(cp.by_region[i].slack_s, ref.by_region[i].slack_s)
          << threads << " region " << i;
    }
    const auto rows = perf::wait_state_rows(engine, threads);
    ASSERT_EQ(rows.size(), ref_rows.size()) << threads;
    for (std::size_t i = 0; i < ref_rows.size(); ++i) {
      EXPECT_EQ(rows[i].rank, ref_rows[i].rank) << threads;
      EXPECT_EQ(rows[i].late_sender_s, ref_rows[i].late_sender_s) << threads;
      EXPECT_EQ(rows[i].late_receiver_s, ref_rows[i].late_receiver_s)
          << threads;
      EXPECT_EQ(rows[i].collective_s, ref_rows[i].collective_s) << threads;
      EXPECT_EQ(rows[i].fault_stall_s, ref_rows[i].fault_stall_s) << threads;
      EXPECT_EQ(rows[i].mpi_s, ref_rows[i].mpi_s) << threads;
    }
  }
}

// --- retained-size accounting --------------------------------------------

TEST(GraphCounters, AccountForTheCompactedGraphAndReachTheReport) {
  auto app = core::make_app("lbm", core::Workload::kTiny);
  app->set_measured_steps(2);
  app->set_warmup_steps(1);
  core::RunOptions opts;
  opts.analyze = true;
  const mach::ClusterSpec cluster = mach::cluster_a();
  const core::RunResult r = core::run_benchmark(
      *app, cluster, mach::block_placement_on_nodes(cluster, 16, 2), opts);
  const sim::EngineStats st = r.engine().stats();
  EXPECT_GT(st.graph_events, 0u);
  EXPECT_GE(st.graph_slices, st.graph_events);  // coalescing only shrinks
  // Fault-free run: packed bytes are exactly events + dependence edges.
  EXPECT_EQ(st.graph_bytes, st.graph_events * sim::EventGraph::kEventBytes +
                                st.graph_deps * sim::EventGraph::kDepBytes);
  // The acceptance bar: at least 40% below the legacy 64 B/event layout.
  EXPECT_LE(st.graph_bytes, st.graph_events * 64 * 6 / 10);
  const std::string json = perf::to_json(
      core::build_report(r, cluster, "lbm", "tiny"));
  EXPECT_TRUE(perf::validate_run_report_json(json));
  EXPECT_NE(json.find("\"graph_events\""), std::string::npos);
  EXPECT_NE(json.find("\"graph_slices\""), std::string::npos);
  EXPECT_NE(json.find("\"graph_bytes\""), std::string::npos);
}

// --- the bounded SPSC queue under the streaming path ---------------------

TEST(BoundedSpscQueue, BackpressureStallsTheProducerWithoutDropOrReorder) {
  sim::BoundedSpscQueue<int> q(2);
  std::atomic<int> pushed{0};
  std::thread producer([&] {
    for (int i = 0; i < 64; ++i) {
      EXPECT_TRUE(q.push(int(i)));
      pushed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // With nobody popping, the producer's lead is bounded by the capacity:
  // it completes exactly `capacity` pushes and then stalls inside the next.
  while (pushed.load(std::memory_order_relaxed) < 2) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(pushed.load(std::memory_order_relaxed), 2);
  // Slow consumer drains everything, in order: stalled, never dropped.
  for (int i = 0; i < 64; ++i) {
    const std::optional<int> v = q.pop();
    ASSERT_TRUE(v.has_value()) << i;
    EXPECT_EQ(*v, i);
  }
  producer.join();
  EXPECT_EQ(pushed.load(std::memory_order_relaxed), 64);
}

TEST(BoundedSpscQueue, CloseDrainsTheBacklogThenSignalsShutdown) {
  sim::BoundedSpscQueue<int> q(8);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  q.close();
  EXPECT_FALSE(q.push(4));  // rejected, not silently queued
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedSpscQueue, CloseWakesABlockedProducer) {
  sim::BoundedSpscQueue<int> q(1);
  EXPECT_TRUE(q.push(0));
  std::atomic<bool> rejected{false};
  std::thread producer(
      [&] { rejected.store(!q.push(1), std::memory_order_relaxed); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
  EXPECT_TRUE(rejected.load(std::memory_order_relaxed));
  EXPECT_EQ(q.pop().value(), 0);
  EXPECT_FALSE(q.pop().has_value());
}

}  // namespace
