// Critical-path extraction over the retained event graph: the telescoped
// path length equals the simulated makespan exactly (bitwise) on fault-free
// runs of every proxy app, slack is non-negative with the path itself at
// zero, fault-induced stalls surface on the path and in the wait classes,
// and the Chrome export carries the new metadata + flow records.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/spechpc.hpp"
#include "machine/topology.hpp"
#include "perf/trace_export.hpp"
#include "perf/waitstate.hpp"
#include "resilience/resilience.hpp"

namespace core = spechpc::core;
namespace mach = spechpc::mach;
namespace perf = spechpc::perf;
namespace res = spechpc::resilience;
namespace sim = spechpc::sim;

namespace {

core::RunResult analyzed_run(const std::string& app_name,
                             const mach::ClusterSpec& cluster,
                             const core::RunOptions& base = {}) {
  auto app = core::make_app(app_name, core::Workload::kTiny);
  app->set_measured_steps(2);
  app->set_warmup_steps(1);
  core::RunOptions opts = base;
  opts.analyze = true;
  return core::run_benchmark(
      *app, cluster, mach::block_placement_on_nodes(cluster, 16, 2), opts);
}

perf::CriticalPath path_of(const core::RunResult& r) {
  return perf::analyze_critical_path(r.engine().event_graph(),
                                     r.engine().nranks(),
                                     r.engine().elapsed());
}

class CritPathExact : public ::testing::TestWithParam<std::string_view> {};

TEST_P(CritPathExact, LengthEqualsMakespanBitwise) {
  const std::string app(GetParam());
  const core::RunResult r = analyzed_run(app, mach::cluster_a());
  const perf::CriticalPath cp = path_of(r);
  ASSERT_TRUE(cp.computed);
  // Telescoping: every walk step moves t to the next boundary, so the sum
  // of attributed spans is exactly the walked distance.  EXPECT_EQ, not
  // NEAR: there is no model error to absorb.
  EXPECT_EQ(cp.length_s, cp.makespan_s) << app;
  EXPECT_EQ(cp.makespan_s, r.engine().elapsed()) << app;
  EXPECT_GT(cp.steps, 0u);
  EXPECT_EQ(cp.fault_s, 0.0) << app << ": fault stall on a fault-free run";

  // Segments are chronological, contiguous, and sum to the length.
  double covered = 0.0;
  for (std::size_t i = 0; i < cp.segments.size(); ++i) {
    const perf::CritSegment& s = cp.segments[i];
    EXPECT_LT(s.t_begin, s.t_end) << app << " seg " << i;
    if (i > 0)
      EXPECT_EQ(cp.segments[i - 1].t_end, s.t_begin) << app << " seg " << i;
    covered += s.seconds();
  }
  EXPECT_NEAR(covered, cp.length_s, 1e-12 * std::max(1.0, cp.length_s));

  // Slack: non-negative everywhere; ranks carrying the path sit at zero.
  double min_path_slack = cp.makespan_s;
  double max_cp = 0.0;
  int busiest = -1;
  for (const perf::CritRankRow& row : cp.by_rank) {
    EXPECT_GE(row.slack_s, 0.0) << app << " rank " << row.rank;
    if (row.cp_s > max_cp) {
      max_cp = row.cp_s;
      busiest = row.rank;
    }
    if (row.cp_s > 0.0) min_path_slack = std::min(min_path_slack, row.slack_s);
  }
  ASSERT_GE(busiest, 0) << app;
  EXPECT_EQ(min_path_slack, 0.0) << app;
}

INSTANTIATE_TEST_SUITE_P(AllProxies, CritPathExact,
                         ::testing::ValuesIn(core::app_names()),
                         [](const auto& info) {
                           std::string name(info.param);
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return name;
                         });

TEST(CritPathMicro, TwoRankLateSenderScenario) {
  // Rank 1 computes 1 s then sends; rank 0 posts its receive immediately
  // and absorbs the whole second as a late-sender wait.  The critical path
  // must run through rank 1's compute, and rank 0's wait must carry a
  // negative-margin dependence on rank 1.
  sim::EngineConfig cfg;
  cfg.nranks = 2;
  cfg.enable_graph = true;
  sim::Engine engine(std::move(cfg));
  engine.run([](sim::Comm& c) -> sim::Task<> {
    if (c.rank() == 1) {
      co_await c.delay(1.0, "produce");
      co_await c.send_bytes(0, 7, 1024.0);
    } else {
      co_await c.recv_bytes(1, 7);
    }
  });
  const sim::WaitStateSeconds& w0 = engine.wait_states(0);
  EXPECT_GT(w0.late_sender_s, 0.9);
  EXPECT_NEAR(w0.total(), engine.counters(0).mpi_time(), 1e-12);
  const perf::CriticalPath cp = perf::analyze_critical_path(
      engine.event_graph(), 2, engine.elapsed());
  EXPECT_EQ(cp.length_s, cp.makespan_s);
  // Rank 1's compute dominates the path; rank 0 contributes at most the
  // final delivery hop.
  ASSERT_EQ(cp.by_rank.size(), 2u);
  EXPECT_GT(cp.by_rank[1].cp_s, 0.9);
  EXPECT_EQ(cp.by_rank[1].slack_s, 0.0);
  EXPECT_LT(cp.by_rank[0].cp_s, 0.1);
}

TEST(CritPathFaults, MessageDropsSurfaceAsFaultStall) {
  // Forced retransmissions delay deliveries past their ideal arrival; the
  // classifier books the added seconds as fault_stall without breaking
  // conservation, and the path records them.
  const res::FaultPlan plan = res::FaultPlan::parse(R"({
    "seed": 7,
    "messages": [{"drop_prob": 0.12}]
  })");
  core::RunOptions base;
  base.faults = &plan;
  base.watchdog.on_stall = sim::WatchdogConfig::OnStall::kDiagnose;
  const core::RunResult r = analyzed_run("lbm", mach::cluster_a(), base);
  ASSERT_GT(r.engine().stats().retransmissions, 0u);
  const auto rows = perf::wait_state_rows(r.engine());
  double fault_total = 0.0;
  for (const perf::WaitStateRow& row : rows) {
    fault_total += row.fault_stall_s;
    EXPECT_NEAR(row.sum(), row.mpi_s,
                1e-9 * std::max(1.0, std::abs(row.mpi_s)))
        << "rank " << row.rank;
  }
  EXPECT_GT(fault_total, 0.0);
  const perf::CriticalPath cp = path_of(r);
  EXPECT_EQ(cp.length_s, cp.makespan_s);
}

TEST(ChromeTrace, EmitsMetadataAndCriticalPathFlows) {
  auto app = core::make_app("lbm", core::Workload::kTiny);
  app->set_measured_steps(2);
  app->set_warmup_steps(1);
  core::RunOptions opts;
  opts.trace = true;
  opts.analyze = true;
  const auto cluster = mach::cluster_a();
  const core::RunResult r = core::run_benchmark(
      *app, cluster, mach::block_placement_on_nodes(cluster, 16, 2), opts);
  const perf::CriticalPath cp = path_of(r);
  std::ostringstream os;
  perf::export_chrome_trace(r.engine().timeline(), os, nullptr, &cp);
  const std::string out = os.str();
  // Satellite fix: partitions and ranks are named, not bare pid/tid numbers.
  EXPECT_NE(out.find("\"process_name\""), std::string::npos);
  EXPECT_NE(out.find("partition 0"), std::string::npos);
  EXPECT_NE(out.find("partition 1"), std::string::npos);
  EXPECT_NE(out.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(out.find("rank 0"), std::string::npos);
  // Flow arrows appear wherever the path hops ranks (16-rank halo runs
  // always hop at least once).
  bool hops = false;
  for (std::size_t i = 1; i < cp.segments.size(); ++i)
    hops |= cp.segments[i].rank != cp.segments[i - 1].rank;
  ASSERT_TRUE(hops);
  EXPECT_NE(out.find("\"cat\":\"critpath\",\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(out.find("\"cat\":\"critpath\",\"ph\":\"f\""), std::string::npos);
  std::string err;
  EXPECT_TRUE(perf::is_valid_json(out, &err)) << err;
}

}  // namespace
