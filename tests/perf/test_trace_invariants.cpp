// Timeline invariants and trace-export formats: per-rank intervals are
// well-ordered, activity fractions partition time, and the Chrome trace is
// syntactically valid JSON with one track per rank.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "core/runner.hpp"
#include "core/suite.hpp"
#include "perf/perf.hpp"

namespace core = spechpc::core;
namespace mach = spechpc::mach;
namespace perf = spechpc::perf;
namespace sim = spechpc::sim;

namespace {

constexpr int kRanks = 8;

const sim::Timeline& traced_tealeaf() {
  static const core::RunResult res = [] {
    auto app = core::make_app("tealeaf", core::Workload::kTiny);
    app->set_measured_steps(2);
    app->set_warmup_steps(1);
    core::RunOptions opts;
    opts.trace = true;
    return core::run_benchmark(*app, mach::cluster_a(), kRanks, opts);
  }();
  return res.engine().timeline();
}

TEST(TraceInvariants, PerRankIntervalsAreOrderedAndDisjoint) {
  const auto& tl = traced_tealeaf();
  ASSERT_FALSE(tl.empty());
  std::map<int, double> last_end;
  for (const auto& iv : tl.intervals()) {
    EXPECT_GE(iv.t_end, iv.t_begin) << iv.label;
    auto [it, fresh] = last_end.try_emplace(iv.rank, iv.t_begin);
    if (!fresh) {
      EXPECT_GE(iv.t_begin, it->second - 1e-12)
          << "rank " << iv.rank << " overlaps at " << iv.label;
    }
    it->second = iv.t_end;
  }
  EXPECT_EQ(static_cast<int>(last_end.size()), kRanks);
}

TEST(TraceInvariants, ActivityFractionsSumToOne) {
  const auto& tl = traced_tealeaf();
  double total = 0.0;
  for (const auto& [activity, fraction] : perf::activity_fractions(tl)) {
    EXPECT_GE(fraction, 0.0) << sim::to_string(activity);
    total += fraction;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Per-rank breakdowns partition that rank's time as well.
  for (int r = 0; r < kRanks; ++r) {
    double rank_total = 0.0;
    for (const auto& [activity, fraction] : perf::activity_fractions(tl, r))
      rank_total += fraction;
    EXPECT_NEAR(rank_total, 1.0, 1e-9) << "rank " << r;
  }
}

TEST(TraceInvariants, ChromeTraceIsValidJsonWithOneTrackPerRank) {
  std::ostringstream os;
  perf::export_chrome_trace(traced_tealeaf(), os);
  const std::string text = os.str();
  std::string err;
  EXPECT_TRUE(perf::is_valid_json(text, &err)) << err;
  std::set<std::string> tids;
  for (std::size_t pos = text.find("\"tid\":"); pos != std::string::npos;
       pos = text.find("\"tid\":", pos + 1)) {
    const std::size_t begin = pos + 6;
    tids.insert(text.substr(begin, text.find_first_of(",}", begin) - begin));
  }
  EXPECT_EQ(static_cast<int>(tids.size()), kRanks);
}

TEST(TraceInvariants, CsvExportHasOneLinePerInterval) {
  const auto& tl = traced_tealeaf();
  std::ostringstream os;
  perf::export_csv(tl, os);
  std::istringstream in(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, tl.intervals().size() + 1);  // header + one per interval
  EXPECT_EQ(os.str().rfind("rank,t_begin,t_end,", 0), 0u);
}

}  // namespace
