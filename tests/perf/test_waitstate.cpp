// Wait-state classification invariants (Scalasca-style, see
// simmpi/waitgraph.hpp): per rank the four class accumulators partition the
// rank's MPI seconds exactly, on every proxy app and both clusters, and the
// analysis output is identical whether the serial reference loop or the
// partitioned parallel engine executed the run.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/spechpc.hpp"
#include "machine/topology.hpp"
#include "perf/critpath.hpp"
#include "perf/waitstate.hpp"

namespace core = spechpc::core;
namespace mach = spechpc::mach;
namespace perf = spechpc::perf;
namespace sim = spechpc::sim;

namespace {

core::RunResult analyzed_run(const std::string& app_name,
                             const mach::ClusterSpec& cluster) {
  auto app = core::make_app(app_name, core::Workload::kTiny);
  app->set_measured_steps(2);
  app->set_warmup_steps(1);
  core::RunOptions opts;
  opts.analyze = true;
  return core::run_benchmark(
      *app, cluster, mach::block_placement_on_nodes(cluster, 16, 2), opts);
}

class WaitStateConservation
    : public ::testing::TestWithParam<std::string_view> {};

TEST_P(WaitStateConservation, ClassesPartitionMpiTimeOnBothClusters) {
  const std::string app(GetParam());
  for (const auto& cluster : {mach::cluster_a(), mach::cluster_b()}) {
    const core::RunResult r = analyzed_run(app, cluster);
    const auto rows = perf::wait_state_rows(r.engine());
    ASSERT_EQ(rows.size(), 16u);
    double mpi_total = 0.0;
    for (const perf::WaitStateRow& row : rows) {
      // Conservation by construction: the classifier lives inside the sole
      // writer of time_in, so the defect is pure floating-point noise.
      EXPECT_NEAR(row.sum(), row.mpi_s,
                  1e-9 * std::max(1.0, std::abs(row.mpi_s)))
          << app << " on " << cluster.name << " rank " << row.rank;
      EXPECT_GE(row.late_sender_s, 0.0);
      EXPECT_GE(row.late_receiver_s, 0.0);
      EXPECT_GE(row.collective_s, 0.0);
      EXPECT_EQ(row.fault_stall_s, 0.0);  // fault-free run
      mpi_total += row.mpi_s;
    }
    EXPECT_GT(mpi_total, 0.0) << app << " on " << cluster.name
                              << " ran without any MPI time";
    EXPECT_LE(perf::wait_state_conservation_error(rows), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProxies, WaitStateConservation,
                         ::testing::ValuesIn(core::app_names()),
                         [](const auto& info) {
                           std::string name(info.param);
                           for (char& c : name)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return name;
                         });

// --- serial vs parallel engine -------------------------------------------

/// Forwards the cluster's real network costs but reports no lookahead
/// floor, which makes the engine fall back to the serial seed loop on any
/// placement.  Same placement + same costs -> same virtual results; only
/// the scheduler differs.
class SerialReferenceNet final : public sim::NetworkModel {
 public:
  explicit SerialReferenceNet(const sim::NetworkModel* inner)
      : inner_(inner) {}
  sim::TransferCost transfer(int src, int dst, const sim::Placement& p,
                             double bytes) const override {
    return inner_->transfer(src, dst, p, bytes);
  }
  double control_latency(int src, int dst,
                         const sim::Placement& p) const override {
    return inner_->control_latency(src, dst, p);
  }
  // cross_node_lookahead() stays the base default: 0 (no partitioning).

 private:
  const sim::NetworkModel* inner_;
};

struct AnalysisSnapshot {
  int partition_count = 0;
  double elapsed = 0.0;
  std::vector<perf::WaitStateRow> waits;
  /// Computed while the engine is alive: event_graph() is a borrowed view
  /// into the engine's per-partition storage, so the analysis runs here and
  /// only its (owning) result outlives the engine.
  perf::CriticalPath cp;
};

AnalysisSnapshot engine_run(const std::string& app_name,
                            const mach::ClusterSpec& cluster,
                            bool serial_reference) {
  auto app = core::make_app(app_name, core::Workload::kTiny);
  app->set_measured_steps(2);
  app->set_warmup_steps(1);
  const mach::RooflineComputeModel compute(cluster);
  const mach::HdrNetworkModel network(cluster.net);
  const SerialReferenceNet serial_net(&network);
  sim::EngineConfig cfg;
  cfg.placement = mach::block_placement_on_nodes(cluster, 16, 2);
  cfg.nranks = cfg.placement.nranks();
  cfg.compute = &compute;
  cfg.network = serial_reference
                    ? static_cast<const sim::NetworkModel*>(&serial_net)
                    : &network;
  cfg.enable_graph = true;
  sim::Engine engine(std::move(cfg));
  engine.run(
      [&](sim::Comm& c) -> sim::Task<> { return app->rank_main(c); });
  AnalysisSnapshot snap;
  snap.partition_count = engine.stats().partition_count;
  snap.elapsed = engine.elapsed();
  snap.waits = perf::wait_state_rows(engine);
  snap.cp = perf::analyze_critical_path(engine.event_graph(), engine.nranks(),
                                        engine.elapsed());
  return snap;
}

TEST(WaitStateEngineIdentity, SerialAndParallelEnginesClassifyIdentically) {
  for (const char* app : {"lbm", "minisweep", "pot3d"}) {
    const AnalysisSnapshot serial = engine_run(app, mach::cluster_a(), true);
    const AnalysisSnapshot parallel =
        engine_run(app, mach::cluster_a(), false);
    ASSERT_EQ(serial.partition_count, 1) << app;
    ASSERT_EQ(parallel.partition_count, 2) << app;
    ASSERT_EQ(serial.elapsed, parallel.elapsed) << app;
    // Bit-identical per-rank classification...
    ASSERT_EQ(serial.waits.size(), parallel.waits.size());
    for (std::size_t r = 0; r < serial.waits.size(); ++r) {
      EXPECT_EQ(serial.waits[r].late_sender_s, parallel.waits[r].late_sender_s)
          << app << " rank " << r;
      EXPECT_EQ(serial.waits[r].late_receiver_s,
                parallel.waits[r].late_receiver_s)
          << app << " rank " << r;
      EXPECT_EQ(serial.waits[r].collective_s, parallel.waits[r].collective_s)
          << app << " rank " << r;
      EXPECT_EQ(serial.waits[r].mpi_s, parallel.waits[r].mpi_s)
          << app << " rank " << r;
    }
    // ...and bit-identical critical-path analysis (the global event-graph
    // order differs across partitionings; the analysis must not).
    const perf::CriticalPath& a = serial.cp;
    const perf::CriticalPath& b = parallel.cp;
    ASSERT_EQ(a.segments.size(), b.segments.size()) << app;
    for (std::size_t i = 0; i < a.segments.size(); ++i) {
      EXPECT_EQ(a.segments[i].rank, b.segments[i].rank) << app << " seg " << i;
      EXPECT_EQ(a.segments[i].t_begin, b.segments[i].t_begin)
          << app << " seg " << i;
      EXPECT_EQ(a.segments[i].t_end, b.segments[i].t_end)
          << app << " seg " << i;
    }
    ASSERT_EQ(a.by_rank.size(), b.by_rank.size());
    for (std::size_t r = 0; r < a.by_rank.size(); ++r) {
      EXPECT_EQ(a.by_rank[r].cp_s, b.by_rank[r].cp_s) << app << " rank " << r;
      EXPECT_EQ(a.by_rank[r].slack_s, b.by_rank[r].slack_s)
          << app << " rank " << r;
    }
  }
}

TEST(WaitStateTable, RendersTotalsAndCapsRows) {
  std::vector<perf::WaitStateRow> rows;
  for (int r = 0; r < 20; ++r) {
    perf::WaitStateRow row;
    row.rank = r;
    row.late_sender_s = 0.25;
    row.collective_s = 0.75;
    row.mpi_s = 1.0;
    rows.push_back(row);
  }
  std::ostringstream os;
  perf::wait_state_table(rows, 4).print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("late_send[s]"), std::string::npos);
  EXPECT_NE(out.find("..."), std::string::npos);
  EXPECT_NE(out.find("total"), std::string::npos);
  EXPECT_EQ(perf::wait_state_conservation_error(rows), 0.0);
}

}  // namespace
