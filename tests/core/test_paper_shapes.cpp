// Regression tests pinning the paper's qualitative findings (the claims in
// EXPERIMENTS.md).  If a calibration change breaks one of the paper's
// shapes, these fail.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "core/suite.hpp"

namespace core = spechpc::core;
namespace mach = spechpc::mach;

namespace {

std::unique_ptr<core::AppProxy> fast(const char* name,
                                     core::Workload w = core::Workload::kTiny,
                                     int steps = 2) {
  auto app = core::make_app(name, w);
  app->set_measured_steps(steps);
  app->set_warmup_steps(1);
  return app;
}

TEST(PaperShapes, MemoryBoundCodesSaturateDomainBandwidth) {
  const auto a = mach::cluster_a();
  for (const char* name : {"tealeaf", "cloverleaf", "pot3d"}) {
    const auto r = core::run_benchmark(*fast(name), a, 18);
    EXPECT_NEAR(r.metrics().mem_bandwidth(), 76.5e9, 3e9) << name;
    // Saturation: 6 cores already deliver most of the domain's speed.
    const double t6 = core::run_benchmark(*fast(name), a, 6).seconds_per_step();
    const double t18 = r.seconds_per_step();
    EXPECT_LT(t6 / t18, 1.25) << name;
  }
}

TEST(PaperShapes, ComputeBoundCodesScaleThroughTheDomain) {
  const auto a = mach::cluster_a();
  for (const char* name : {"sph-exa", "soma"}) {
    const double t6 = core::run_benchmark(*fast(name), a, 6).seconds_per_step();
    const double t18 =
        core::run_benchmark(*fast(name), a, 18).seconds_per_step();
    EXPECT_GT(t6 / t18, 2.4) << name;  // near-ideal 3x
  }
}

TEST(PaperShapes, AccelerationFactorsBracketTheClasses) {
  // Sect. 4.1.2: memory-bound ~1.55-1.7; compute-bound near the 1.2 peak
  // ratio; weather above everything.
  const auto a = mach::cluster_a();
  const auto b = mach::cluster_b();
  auto factor = [&](const char* name) {
    return core::run_benchmark(*fast(name), a, 72).seconds_per_step() /
           core::run_benchmark(*fast(name), b, 104).seconds_per_step();
  };
  for (const char* name : {"tealeaf", "cloverleaf", "pot3d", "hpgmgfv"})
    EXPECT_NEAR(factor(name), 1.6, 0.1) << name;
  for (const char* name : {"sph-exa", "minisweep", "soma"})
    EXPECT_NEAR(factor(name), 1.2, 0.12) << name;
  const double weather = factor("weather");
  EXPECT_GT(weather, 1.55);  // the largest factor of the suite
  for (const char* name : {"tealeaf", "sph-exa", "lbm"})
    EXPECT_GT(weather, factor(name));
}

TEST(PaperShapes, MinisweepCollapsesAtPrimeCounts) {
  const auto a = mach::cluster_a();
  auto app = fast("minisweep");
  const double t58 = core::run_benchmark(*app, a, 58).seconds_per_step();
  const auto r59 = core::run_benchmark(*app, a, 59);
  EXPECT_GT(r59.seconds_per_step() / t58, 2.0);       // >= ~60% drop
  EXPECT_GT(r59.metrics().mpi_fraction(), 0.75);      // MPI dominates
}

TEST(PaperShapes, LbmSlowRankAt71) {
  const auto a = mach::cluster_a();
  auto app = fast("lbm");
  const double t71 = core::run_benchmark(*app, a, 71).seconds_per_step();
  const double t72 = core::run_benchmark(*app, a, 72).seconds_per_step();
  EXPECT_NEAR(t71 / t72, 1.33, 0.12);  // paper: "about 33% smaller"
}

TEST(PaperShapes, HotAndCoolCodesOnBothClusters) {
  for (const auto& cl : {mach::cluster_a(), mach::cluster_b()}) {
    const auto hot =
        core::run_benchmark(*fast("sph-exa"), cl, cl.cpu.cores_per_socket);
    const auto cool =
        core::run_benchmark(*fast("soma"), cl, cl.cpu.cores_per_socket);
    EXPECT_GT(hot.power().chip_w / cl.cpu.tdp_per_socket_w, 0.93) << cl.name;
    EXPECT_LT(cool.power().chip_w, hot.power().chip_w) << cl.name;
    EXPECT_LT(cool.power().chip_w / cl.cpu.tdp_per_socket_w, 0.90) << cl.name;
  }
}

TEST(PaperShapes, DramPowerTracksBandwidthUtilization) {
  const auto a = mach::cluster_a();
  const auto mem = core::run_benchmark(*fast("pot3d"), a, 18);
  const auto cpu = core::run_benchmark(*fast("sph-exa"), a, 18);
  EXPECT_NEAR(mem.power().dram_w, 16.0, 0.5);   // paper: 16 W saturated
  EXPECT_LT(cpu.power().dram_w, 11.0);          // paper: ~9.5 W floor
}

TEST(PaperShapes, SomaAggregateTrafficGrowsWithRanks) {
  // Sect. 5.1.2: replicated data -> aggregate memory volume ~ rank count.
  const auto a = mach::cluster_a();
  auto app = fast("soma", core::Workload::kSmall);
  const double v1 =
      core::run_on_nodes(*app, a, 1).metrics().mem_bytes;
  const double v4 =
      core::run_on_nodes(*app, a, 4).metrics().mem_bytes;
  EXPECT_GT(v4 / v1, 1.8);  // strongly rising (exact ratio depends on the
                            // distributed polymer share)
}

TEST(PaperShapes, WeatherSuperlinearOnlyOnClusterB) {
  auto app = fast("weather", core::Workload::kSmall);
  const auto b = mach::cluster_b();
  const double tb1 = core::run_on_nodes(*app, b, 1).seconds_per_step();
  const double tb16 = core::run_on_nodes(*app, b, 16).seconds_per_step();
  EXPECT_GT(tb1 / tb16 / 16.0, 1.2);  // superlinear on Sapphire Rapids
  const auto a = mach::cluster_a();
  const double ta1 = core::run_on_nodes(*app, a, 1).seconds_per_step();
  const double ta16 = core::run_on_nodes(*app, a, 16).seconds_per_step();
  EXPECT_LT(ta1 / ta16 / 16.0, tb1 / tb16 / 16.0);  // weaker on Ice Lake
}

TEST(PaperShapes, BaselinePowerSharesAcrossGenerations) {
  const auto a = mach::cluster_a();
  const auto b = mach::cluster_b();
  const auto sb = mach::sandy_bridge_reference();
  const double fa = a.cpu.idle_power_per_socket_w / a.cpu.tdp_per_socket_w;
  const double fb = b.cpu.idle_power_per_socket_w / b.cpu.tdp_per_socket_w;
  const double fs = sb.cpu.idle_power_per_socket_w / sb.cpu.tdp_per_socket_w;
  EXPECT_LT(fs, fa);
  EXPECT_LT(fa, fb);  // the paper's generational trend
}

TEST(PaperShapes, OsNoiseProducesSpreadButPreservesDeterminism) {
  const auto a = mach::cluster_a();
  auto app = fast("pot3d");
  core::RunOptions o1;
  o1.os_noise_amplitude = 0.05;
  o1.os_noise_seed = 1;
  core::RunOptions o2 = o1;
  o2.os_noise_seed = 2;
  const double t_clean = core::run_benchmark(*app, a, 8).seconds_per_step();
  const double t1 = core::run_benchmark(*app, a, 8, o1).seconds_per_step();
  const double t1b = core::run_benchmark(*app, a, 8, o1).seconds_per_step();
  const double t2 = core::run_benchmark(*app, a, 8, o2).seconds_per_step();
  EXPECT_EQ(t1, t1b);     // same seed -> bit-identical
  EXPECT_NE(t1, t2);      // different seed -> different sample
  EXPECT_GT(t1, t_clean); // noise only slows down
  EXPECT_LT(t1, 1.06 * t_clean);
}

}  // namespace
