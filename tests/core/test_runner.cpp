// Experiment-runner API: placements, options plumbing, result wiring.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "core/suite.hpp"

namespace core = spechpc::core;
namespace mach = spechpc::mach;

namespace {

TEST(Runner, NodeCountsAndPlacementsAreConsistent) {
  const auto a = mach::cluster_a();
  auto app = core::make_app("tealeaf", core::Workload::kTiny);
  app->set_measured_steps(2);
  app->set_warmup_steps(1);
  const auto r1 = core::run_benchmark(*app, a, 36);
  EXPECT_EQ(r1.metrics().nranks, 36);
  EXPECT_EQ(r1.metrics().nodes, 1);
  const auto r2 = core::run_on_nodes(*app, a, 2);
  EXPECT_EQ(r2.metrics().nranks, 144);
  EXPECT_EQ(r2.metrics().nodes, 2);
}

TEST(Runner, TraceOptionControlsTimeline) {
  const auto a = mach::cluster_a();
  auto app = core::make_app("weather", core::Workload::kTiny);
  app->set_measured_steps(1);
  app->set_warmup_steps(0);
  const auto off = core::run_benchmark(*app, a, 4);
  EXPECT_TRUE(off.engine().timeline().empty());
  core::RunOptions opts;
  opts.trace = true;
  const auto on = core::run_benchmark(*app, a, 4, opts);
  EXPECT_FALSE(on.engine().timeline().empty());
}

TEST(Runner, ProtocolOptionReachesTheEngine) {
  const auto a = mach::cluster_a();
  auto app = core::make_app("minisweep", core::Workload::kTiny);
  app->set_measured_steps(1);
  app->set_warmup_steps(0);
  core::RunOptions eager;
  eager.protocol.force_eager = true;
  const double t_rzv = core::run_benchmark(*app, a, 59).seconds_per_step();
  const double t_eager =
      core::run_benchmark(*app, a, 59, eager).seconds_per_step();
  EXPECT_LT(t_eager, t_rzv);
}

TEST(Runner, RooflineOptionsReachTheModel) {
  const auto a = mach::cluster_a();
  auto app = core::make_app("tealeaf", core::Workload::kTiny);
  app->set_measured_steps(1);
  app->set_warmup_steps(0);
  core::RunOptions naive;
  naive.roofline.naive_linear_bandwidth = true;
  const double sat = core::run_benchmark(*app, a, 18).seconds_per_step();
  const double lin =
      core::run_benchmark(*app, a, 18, naive).seconds_per_step();
  EXPECT_LT(lin, sat);  // unshared bandwidth -> faster
}

TEST(Runner, SecondsPerStepNormalizesBySteps) {
  const auto a = mach::cluster_a();
  auto app3 = core::make_app("cloverleaf", core::Workload::kTiny);
  app3->set_measured_steps(3);
  app3->set_warmup_steps(1);
  auto app6 = core::make_app("cloverleaf", core::Workload::kTiny);
  app6->set_measured_steps(6);
  app6->set_warmup_steps(1);
  const double t3 = core::run_benchmark(*app3, a, 8).seconds_per_step();
  const double t6 = core::run_benchmark(*app6, a, 8).seconds_per_step();
  EXPECT_NEAR(t3, t6, 1e-6 * t3);  // up to per-run constant costs
}

TEST(Runner, ResultOwnsEngineBeyondTheCall) {
  const auto a = mach::cluster_a();
  core::RunResult res = [&] {
    auto app = core::make_app("soma", core::Workload::kTiny);
    app->set_measured_steps(1);
    app->set_warmup_steps(0);
    core::RunOptions opts;
    opts.trace = true;
    return core::run_benchmark(*app, a, 4, opts);
  }();
  // The engine and its timeline must outlive the app and the scope above.
  EXPECT_GT(res.engine().elapsed(), 0.0);
  EXPECT_FALSE(res.engine().timeline().empty());
  EXPECT_EQ(res.engine().nranks(), 4);
}

}  // namespace
