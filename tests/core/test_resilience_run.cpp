// Resilience through the full stack: run_benchmark with a fault plan arms
// the injector and decorator models, degraded runs are reproducible, the
// RunReport carries the degraded-run section, and -- the key invariant --
// a fault-free run with resilience plumbing enabled stays bit-identical to
// a plain run.
#include <gtest/gtest.h>

#include <string>

#include "core/spechpc.hpp"
#include "resilience/resilience.hpp"

namespace core = spechpc::core;
namespace mach = spechpc::mach;
namespace perf = spechpc::perf;
namespace res = spechpc::resilience;
namespace sim = spechpc::sim;

namespace {

core::RunResult run_lbm(const core::RunOptions& opts,
                        const res::FaultPlan* app_plan = nullptr) {
  auto app = core::make_app("lbm", core::Workload::kTiny);
  app->set_measured_steps(4);
  app->set_warmup_steps(1);
  if (app_plan) app->set_fault_plan(app_plan);
  return core::run_benchmark(*app, mach::cluster_a(), 4, opts);
}

TEST(ResilienceRun, EmptyPlanIsBitIdenticalToNoPlan) {
  const core::RunResult plain = run_lbm({});
  res::FaultPlan empty;
  core::RunOptions opts;
  opts.faults = &empty;  // non-null but empty: no decorators, no injector
  const core::RunResult guarded = run_lbm(opts);
  EXPECT_EQ(plain.wall_s(), guarded.wall_s());
  EXPECT_EQ(plain.metrics().bytes_sent, guarded.metrics().bytes_sent);
}

TEST(ResilienceRun, MessageOnlyPlanWithoutDropsIsBitIdenticalToo) {
  // Armed injector (faults_enabled() true) whose rules never fire: the
  // engine takes the fault-aware code paths yet must reproduce the plain
  // run exactly.
  const core::RunResult plain = run_lbm({});
  const res::FaultPlan plan =
      res::FaultPlan::parse(R"({"messages": [{"drop_prob": 0.0}]})");
  core::RunOptions opts;
  opts.faults = &plan;
  const core::RunResult guarded = run_lbm(opts);
  EXPECT_TRUE(guarded.engine().faults_enabled());
  EXPECT_EQ(plain.wall_s(), guarded.wall_s());
}

TEST(ResilienceRun, StragglerWindowSlowsTheRunDown) {
  const core::RunResult plain = run_lbm({});
  const res::FaultPlan plan = res::FaultPlan::parse(
      R"({"stragglers": [{"rank": 1, "slowdown": 4.0}]})");
  core::RunOptions opts;
  opts.faults = &plan;
  const core::RunResult slow = run_lbm(opts);
  EXPECT_GT(slow.wall_s(), plain.wall_s() * 1.5);
}

TEST(ResilienceRun, DegradedLinkSlowsCommunication) {
  core::RunOptions base;
  base.protocol.force_eager = true;
  const core::RunResult plain = run_lbm(base);
  const res::FaultPlan plan = res::FaultPlan::parse(R"({
    "links": [{"latency_factor": 200.0, "bandwidth_factor": 0.01}]
  })");
  core::RunOptions opts = base;
  opts.faults = &plan;
  const core::RunResult degraded = run_lbm(opts);
  EXPECT_GT(degraded.wall_s(), plain.wall_s());
}

TEST(ResilienceRun, DroppedMessagesAreRetransmittedAndCounted) {
  const res::FaultPlan plan =
      res::FaultPlan::parse(R"({"messages": [{"drop_prob": 0.4}]})");
  core::RunOptions opts;
  opts.protocol.force_eager = true;  // subject every message to injection
  opts.faults = &plan;
  // With enough retries no message is ever lost (p = 0.4^13 per message),
  // so the run completes on the default throw-on-stall policy.
  opts.watchdog.max_retries = 12;
  const core::RunResult r = run_lbm(opts);
  const sim::EngineStats st = r.engine().stats();
  EXPECT_GT(st.messages_dropped, 0u);
  EXPECT_GT(st.retransmissions, 0u);
  EXPECT_EQ(st.messages_lost, 0u);
  EXPECT_EQ(r.engine().stall(), nullptr);
}

TEST(ResilienceRun, CrashWithCheckpointCompletesAndReportsRecovery) {
  const res::FaultPlan plan = res::FaultPlan::parse(R"({
    "crashes": [{"rank": 2, "time": 1e-9}],
    "checkpoint": {"interval_steps": 2, "state_bytes_per_rank": 1e6,
                   "restart_delay_s": 1e-3}
  })");
  core::RunOptions opts;
  opts.faults = &plan;
  const core::RunResult r = run_lbm(opts, &plan);
  const sim::ResilienceLog& log = r.engine().resilience_log();
  EXPECT_GE(log.checkpoints, 1);
  EXPECT_GE(log.rollbacks, 1);
  EXPECT_GT(log.restart_s, 0.0);
  EXPECT_EQ(r.engine().stall(), nullptr);

  // Bit-identical replay of the whole degraded run.
  const core::RunResult again = run_lbm(opts, &plan);
  EXPECT_EQ(r.wall_s(), again.wall_s());
  EXPECT_EQ(again.engine().resilience_log().events.size(),
            log.events.size());
}

TEST(ResilienceRun, ReportCarriesTheResilienceSectionOnlyWhenFaulted) {
  const core::RunResult plain = run_lbm({});
  const std::string healthy = perf::to_json(
      core::build_report(plain, mach::cluster_a(), "lbm", "tiny"));
  EXPECT_TRUE(perf::validate_run_report_json(healthy));
  EXPECT_EQ(healthy.find("\"resilience\""), std::string::npos);

  const res::FaultPlan plan = res::FaultPlan::parse(R"({
    "crashes": [{"rank": 1, "time": 1e-9}],
    "checkpoint": {"interval_steps": 2, "state_bytes_per_rank": 1e6,
                   "restart_delay_s": 1e-3}
  })");
  core::RunOptions opts;
  opts.faults = &plan;
  const core::RunResult faulted = run_lbm(opts, &plan);
  perf::RunReport rep =
      core::build_report(faulted, mach::cluster_a(), "lbm", "tiny");
  rep.resilience.plan_json = plan.to_json();
  const std::string degraded = perf::to_json(rep);
  EXPECT_TRUE(perf::validate_run_report_json(degraded));
  EXPECT_NE(degraded.find("\"resilience\""), std::string::npos);
  EXPECT_NE(degraded.find("\"rollback\""), std::string::npos);
  EXPECT_NE(degraded.find("\"plan\""), std::string::npos);
}

TEST(ResilienceRun, WatchdogDiagnosisReachesTheReport) {
  // Hard crash without a checkpoint protocol: the run cannot finish; with
  // the diagnose policy it must return and the report must say why.
  const res::FaultPlan plan = res::FaultPlan::parse(R"({
    "hard_crashes": true,
    "crashes": [{"rank": 3, "time": 1e-9}]
  })");
  core::RunOptions opts;
  opts.faults = &plan;
  opts.watchdog.on_stall = sim::WatchdogConfig::OnStall::kDiagnose;
  const core::RunResult r = run_lbm(opts);
  ASSERT_NE(r.engine().stall(), nullptr);
  EXPECT_EQ(r.engine().stats().crashed_ranks, 1);
  const std::string json = perf::to_json(
      core::build_report(r, mach::cluster_a(), "lbm", "tiny"));
  EXPECT_TRUE(perf::validate_run_report_json(json));
  EXPECT_NE(json.find("\"stall\""), std::string::npos);
  EXPECT_NE(json.find("\"blocked_recvs\""), std::string::npos);
}

}  // namespace
