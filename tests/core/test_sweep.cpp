// SweepRunner: input-order determinism across worker counts, inline serial
// fast path, exception propagation, and bit-identical full-model sweeps.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/spechpc.hpp"
#include "core/sweep.hpp"

namespace core = spechpc::core;
namespace mach = spechpc::mach;

namespace {

TEST(SweepRunner, MapReturnsResultsInInputOrder) {
  for (int jobs : {1, 2, 4, 8}) {
    core::SweepRunner pool(jobs);
    const auto out =
        pool.map<int>(100, [](std::size_t i) { return static_cast<int>(i * i); });
    ASSERT_EQ(out.size(), 100u) << "jobs=" << jobs;
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_EQ(out[i], static_cast<int>(i * i)) << "jobs=" << jobs;
  }
}

TEST(SweepRunner, SerialRunsInline) {
  // jobs == 1 must execute on the calling thread (no pool handoff).
  core::SweepRunner pool(1);
  const auto caller = std::this_thread::get_id();
  bool all_inline = true;
  pool.run_indexed(8, [&](std::size_t) {
    if (std::this_thread::get_id() != caller) all_inline = false;
  });
  EXPECT_TRUE(all_inline);
}

TEST(SweepRunner, EveryIndexRunsExactlyOnce) {
  for (int jobs : {2, 4}) {
    core::SweepRunner pool(jobs);
    std::vector<std::atomic<int>> hits(257);
    pool.run_indexed(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " jobs=" << jobs;
  }
}

TEST(SweepRunner, FirstExceptionByIndexIsRethrown) {
  for (int jobs : {1, 4}) {
    core::SweepRunner pool(jobs);
    try {
      pool.run_indexed(32, [](std::size_t i) {
        if (i == 7) throw std::runtime_error("boom-7");
        if (i == 23) throw std::runtime_error("boom-23");
      });
      FAIL() << "expected an exception, jobs=" << jobs;
    } catch (const std::runtime_error& e) {
      // The serial loop would have hit index 7 first; the pool must agree
      // regardless of which worker finished first.
      EXPECT_STREQ(e.what(), "boom-7") << "jobs=" << jobs;
    }
  }
}

TEST(SweepRunner, PoolIsReusableAcrossBatches) {
  core::SweepRunner pool(3);
  for (int round = 0; round < 5; ++round) {
    const auto out = pool.map<int>(
        17, [&](std::size_t i) { return round * 100 + static_cast<int>(i); });
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_EQ(out[i], round * 100 + static_cast<int>(i));
  }
}

// Serialized fingerprint of one simulation point; any nondeterminism in
// parallel sweeps (shared state, reordered results) changes it.
struct Fingerprint {
  double wall = 0.0;
  double energy = 0.0;
  double bytes = 0.0;
  bool operator==(const Fingerprint&) const = default;
};

Fingerprint run_point(std::string_view app_name, int nodes) {
  auto app = core::make_app(app_name, core::Workload::kSmall);
  app->set_measured_steps(2);
  app->set_warmup_steps(1);
  const auto r = core::run_on_nodes(*app, mach::cluster_a(), nodes);
  return {r.wall_s(), r.power().total_energy_j(), r.metrics().bytes_sent};
}

TEST(SweepRunner, FullModelSweepIsBitIdenticalAcrossJobCounts) {
  // Every suite app x 4 node counts, exactly the shape the figure benches
  // fan out.  The parallel results must be BIT-identical to serial.
  const auto apps = core::app_names();
  ASSERT_GE(apps.size(), 9u);
  const std::vector<int> nodes{1, 2, 3, 4};

  std::vector<std::pair<std::string_view, int>> grid;
  for (const auto& a : apps)
    for (int n : nodes) grid.emplace_back(a, n);

  core::SweepRunner serial(1);
  const auto want = serial.map<Fingerprint>(grid.size(), [&](std::size_t i) {
    return run_point(grid[i].first, grid[i].second);
  });

  for (int jobs : {2, 4, 8}) {
    core::SweepRunner pool(jobs);
    const auto got = pool.map<Fingerprint>(grid.size(), [&](std::size_t i) {
      return run_point(grid[i].first, grid[i].second);
    });
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
      EXPECT_EQ(got[i], want[i])
          << "jobs=" << jobs << " app=" << grid[i].first
          << " nodes=" << grid[i].second;
  }
}

}  // namespace
