// Bit-identity of the partitioned engine through the full stack: for every
// proxy app on both clusters, a two-node run produces byte-identical
// RunReport JSON whatever the worker-thread count -- including a
// crash/recovery fault-plan run.  The RunReport carries every simulated
// quantity (metrics, power, per-rank counters, regions, time series, energy
// timeline, resilience log), so byte equality of the artifact is the
// strongest end-to-end determinism statement the repo can make.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "core/spechpc.hpp"
#include "machine/topology.hpp"
#include "resilience/resilience.hpp"

namespace core = spechpc::core;
namespace mach = spechpc::mach;
namespace perf = spechpc::perf;
namespace res = spechpc::resilience;

namespace {

/// One small but fully instrumented two-node run -> canonical report JSON.
std::string report_json(const std::string& app_name,
                        const mach::ClusterSpec& cluster, int threads,
                        const res::FaultPlan* plan = nullptr) {
  auto app = core::make_app(app_name, core::Workload::kTiny);
  app->set_measured_steps(2);
  app->set_warmup_steps(1);
  core::RunOptions opts;
  opts.trace = true;    // exercise timeline + energy-series merging
  opts.regions = true;  // and the cross-partition region-forest graft
  opts.engine_threads = threads;
  if (plan) {
    opts.faults = plan;
    app->set_fault_plan(plan);
    opts.watchdog.on_stall = spechpc::sim::WatchdogConfig::OnStall::kDiagnose;
  }
  const core::RunResult r = core::run_benchmark(
      *app, cluster, mach::block_placement_on_nodes(cluster, 16, 2), opts);
  perf::RunReport rep =
      core::build_report(r, cluster, app_name, "tiny");
  if (plan) rep.resilience.plan_json = plan->to_json();
  return perf::to_json(rep);
}

class ParallelIdentity : public ::testing::TestWithParam<std::string_view> {};

TEST_P(ParallelIdentity, ReportBytesIdenticalAcrossThreadsOnBothClusters) {
  const std::string app(GetParam());
  for (const auto& cluster : {mach::cluster_a(), mach::cluster_b()}) {
    const std::string ref = report_json(app, cluster, 1);
    // Two nodes -> two partitions; the report must not depend on how many
    // workers drove them.
    EXPECT_NE(ref.find("\"partition_count\":2"), std::string::npos)
        << app << " on " << cluster.name << " did not partition";
    for (int threads : {2, 4, 8}) {
      const std::string got = report_json(app, cluster, threads);
      ASSERT_EQ(ref, got) << app << " on " << cluster.name << " diverged at "
                          << threads << " threads";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProxies, ParallelIdentity,
                         ::testing::ValuesIn(core::app_names()),
                         [](const auto& info) {
                           std::string name(info.param);
                           for (char& c : name)  // "sph-exa" -> "sph_exa"
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return name;
                         });

TEST(ParallelIdentityFaults, CrashRecoveryRunIsThreadCountInvariant) {
  // Transient crash + checkpoint/rollback on a two-node lbm run: the
  // resilience log, degraded metrics, and fault events must all survive the
  // partition merge byte-identically at every thread count.
  const res::FaultPlan plan = res::FaultPlan::parse(R"({
    "crashes": [{"rank": 2, "time": 1e-9}],
    "checkpoint": {"interval_steps": 2, "state_bytes_per_rank": 65536,
                   "restart_delay_s": 1e-4}
  })");
  const std::string ref = report_json("lbm", mach::cluster_a(), 1, &plan);
  EXPECT_NE(ref.find("\"rollbacks\":"), std::string::npos);
  for (int threads : {2, 4, 8}) {
    const std::string got =
        report_json("lbm", mach::cluster_a(), threads, &plan);
    ASSERT_EQ(ref, got) << "fault-plan run diverged at " << threads
                        << " threads";
  }
}

}  // namespace
