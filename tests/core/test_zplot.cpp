// Z-plot sweeps: structure, min-point selection under frequency scaling,
// race-to-idle on the baseline-dominated cluster, and the JSON artifact.
#include <gtest/gtest.h>

#include "core/zplot.hpp"
#include "machine/machine.hpp"
#include "perf/report.hpp"

namespace core = spechpc::core;
namespace mach = spechpc::mach;
namespace perf = spechpc::perf;
namespace power = spechpc::power;

namespace {

TEST(Zplot, MinPointSelectionUnderFrequencyScaling) {
  const auto cluster = mach::cluster_a();
  core::ZplotOptions opts;
  opts.core_counts = {1, 2, 4, 9};
  opts.frequency_factors = {0.7, 1.0};
  opts.measured_steps = 2;
  const auto z = core::zplot_sweep("lbm", cluster, opts);
  EXPECT_EQ(z.app, "lbm");
  EXPECT_EQ(z.cluster, cluster.name);
  EXPECT_GT(z.baseline_seconds_per_step, 0.0);
  ASSERT_EQ(z.curves.size(), 2u);
  for (const core::ZplotCurve& curve : z.curves) {
    ASSERT_EQ(curve.points.size(), 4u);
    ASSERT_LT(curve.min_energy, curve.points.size());
    ASSERT_LT(curve.min_edp, curve.points.size());
    for (const power::OperatingPoint& p : curve.points) {
      EXPECT_GT(p.speedup, 0.0);
      EXPECT_GT(p.energy_j, 0.0);
      // The marked minima really are the curve's minima.
      EXPECT_LE(curve.points[curve.min_energy].energy_j, p.energy_j);
      EXPECT_LE(curve.points[curve.min_edp].edp(), p.edp());
    }
  }
  // Speedups are relative to 1 core at nominal clock: that point is 1.0
  // exactly, and no down-clocked run can beat its own nominal twin.
  EXPECT_DOUBLE_EQ(z.curves[1].points[0].speedup, 1.0);
  EXPECT_LE(z.curves[0].points[0].speedup, 1.0);
  // Down-clocking lowers chip power: the slow curve's 1-core run must not
  // consume more energy per step than the nominal one at equal work only if
  // it also finishes nearly as fast; just require the curves to differ.
  EXPECT_NE(z.curves[0].points[0].energy_j, z.curves[1].points[0].energy_j);
}

TEST(Zplot, RaceToIdleOnBaselineDominatedCluster) {
  // High baseline power pushes the energy minimum toward high core counts
  // (Sect. 4.3.1) -- reproduced by the full sweep pipeline.
  const auto cluster = mach::cluster_a();
  core::ZplotOptions opts;
  opts.core_counts = {1, 2, 4, 6, 9, 12, 18};
  opts.measured_steps = 2;
  opts.jobs = 0;  // auto: this is the largest sweep in the test suite
  const auto z = core::zplot_sweep("lbm", cluster, opts);
  ASSERT_EQ(z.curves.size(), 1u);
  const core::ZplotCurve& curve = z.curves.front();
  ASSERT_LT(curve.min_energy, curve.points.size());
  EXPECT_GE(curve.points[curve.min_energy].resources, 6);
  // Minimum-energy and minimum-EDP points nearly coincide.
  EXPECT_LE(std::abs(static_cast<int>(curve.min_energy) -
                     static_cast<int>(curve.min_edp)),
            2);
}

TEST(Zplot, JsonArtifactValidates) {
  const auto cluster = mach::cluster_b();
  core::ZplotOptions opts;
  opts.core_counts = {1, 2};
  opts.frequency_factors = {0.85, 1.0};
  opts.measured_steps = 2;
  const auto z = core::zplot_sweep("tealeaf", cluster, opts);
  const std::string text = core::to_json(z);
  std::string err;
  EXPECT_TRUE(perf::is_valid_json(text, &err)) << err;
  EXPECT_TRUE(perf::validate_zplot_json(text, &err)) << err;
  for (const auto& key : perf::zplot_required_keys())
    EXPECT_NE(text.find("\"" + key + "\""), std::string::npos) << key;
  // Index sentinels are in-range (never the -1 "no points" marker here).
  EXPECT_EQ(text.find("\"min_energy\":-1"), std::string::npos);
}

TEST(Zplot, EmptyCurveJsonUsesMinusOneSentinels) {
  core::ZplotResult z;
  z.app = "lbm";
  z.cluster = "ClusterA";
  z.workload = "tiny";
  z.curves.push_back({1.0, {}, power::npos, power::npos});
  const std::string text = core::to_json(z);
  std::string err;
  EXPECT_TRUE(perf::is_valid_json(text, &err)) << err;
  EXPECT_NE(text.find("\"min_energy\":-1"), std::string::npos);
  EXPECT_NE(text.find("\"min_edp\":-1"), std::string::npos);
}

}  // namespace
