// Golden registry identity: for every proxy app on both paper clusters, a
// fully instrumented two-node run driven by the registry-loaded spec emits
// RunReport JSON byte-identical to the hard-coded constructor's run.  The
// report carries every simulated quantity (metrics, power, per-rank
// counters, regions, time series, energy timeline) plus the canonical
// descriptor echo, so byte equality proves the JSON descriptors encode the
// paper machines exactly -- down to the last double bit.
//
// The non-paper backends (AMD, SPR+PVC, FPGA) have no hard-coded twin;
// they're covered by end-to-end runs that must produce schema-valid reports.
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "core/spechpc.hpp"
#include "machine/registry.hpp"
#include "machine/topology.hpp"

namespace core = spechpc::core;
namespace mach = spechpc::mach;
namespace perf = spechpc::perf;

namespace {

/// One small but fully instrumented two-node run -> canonical report JSON.
std::string report_json(const std::string& app_name,
                        const mach::ClusterSpec& cluster) {
  auto app = core::make_app(app_name, core::Workload::kTiny);
  app->set_measured_steps(2);
  app->set_warmup_steps(1);
  core::RunOptions opts;
  opts.trace = true;
  opts.regions = true;
  const core::RunResult r = core::run_benchmark(
      *app, cluster, mach::block_placement_on_nodes(cluster, 16, 2), opts);
  return perf::to_json(core::build_report(r, cluster, app_name, "tiny"));
}

class RegistryIdentity : public ::testing::TestWithParam<std::string_view> {};

TEST_P(RegistryIdentity, RegistrySpecsReproduceHardCodedReportsByteForByte) {
  const std::string app(GetParam());
  const auto& reg = mach::Registry::builtin();
  const struct {
    const char* id;
    mach::ClusterSpec hard_coded;
  } machines[] = {{"cluster-a", mach::cluster_a()},
                  {"cluster-b", mach::cluster_b()}};
  for (const auto& m : machines) {
    const std::string ref = report_json(app, m.hard_coded);
    const std::string got = report_json(app, reg.get(m.id));
    ASSERT_EQ(ref, got) << app << " diverged on " << m.id;
    // The echo must be present (schema v4) and identical on both paths.
    EXPECT_NE(ref.find("\"descriptor\":{\"schema_version\":"),
              std::string::npos);
  }
}

INSTANTIATE_TEST_SUITE_P(AllProxies, RegistryIdentity,
                         ::testing::ValuesIn(core::app_names()),
                         [](const auto& param_info) {
                           std::string name(param_info.param);
                           for (char& c : name)  // "sph-exa" -> "sph_exa"
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return name;
                         });

TEST(RegistryIdentity, NewBackendsRunEndToEndWithValidReports) {
  for (const std::string id : {"amd-genoa", "spr-pvc", "fpga-u280"}) {
    const mach::ClusterSpec& cl = mach::Registry::builtin().get(id);
    for (const std::string app : {"lbm", "tealeaf"}) {
      const std::string json = report_json(app, cl);
      std::string err;
      EXPECT_TRUE(perf::validate_run_report_json(json, &err))
          << id << "/" << app << ": " << err;
      // The echo carries the backend tag the pipeline ran under.
      EXPECT_NE(json.find("\"backend\":\"" +
                          std::string(mach::to_string(cl.backend)) + "\""),
                std::string::npos)
          << id << "/" << app;
    }
  }
}

TEST(RegistryIdentity, FrequencyScaledSpecStillSerializesAndValidates) {
  // scale_frequency output must stay inside the validator's envelope, so
  // DVFS'd specs can flow through the same descriptor echo path.
  for (const double f : {0.7, 1.0, 1.3}) {
    const mach::ClusterSpec scaled =
        mach::scale_frequency(mach::cluster_b(), f);
    EXPECT_NO_THROW(mach::validate_machine(scaled)) << "factor " << f;
    const std::string canon = mach::machine_to_json(scaled);
    EXPECT_EQ(mach::machine_to_json(mach::parse_machine_json(canon)), canon)
        << "factor " << f;
  }
}

}  // namespace
