// DVFS what-if extension: frequency scaling of the machine model.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "core/suite.hpp"
#include "core/zplot.hpp"
#include "machine/machine.hpp"

namespace mach = spechpc::mach;
namespace core = spechpc::core;

namespace {

TEST(FrequencyScaling, ScalesCoreRatesNotDram) {
  const auto a = mach::cluster_a();
  const auto half = mach::scale_frequency(a, 0.5);
  EXPECT_DOUBLE_EQ(half.cpu.base_clock_hz, 1.2e9);
  EXPECT_DOUBLE_EQ(half.cpu.l2_bw_per_core_Bps, a.cpu.l2_bw_per_core_Bps / 2);
  // DRAM is clocked independently of the cores.
  EXPECT_DOUBLE_EQ(half.cpu.sat_bw_per_domain_Bps,
                   a.cpu.sat_bw_per_domain_Bps);
  // Single-core bandwidth is concurrency-bound; the core-cycle share of the
  // line-fill round trip stretches, so it scales partially with the clock.
  EXPECT_DOUBLE_EQ(half.cpu.per_core_mem_bw_Bps,
                   a.cpu.per_core_mem_bw_Bps *
                       (mach::kPerCoreBwClockShare * 0.5 +
                        (1.0 - mach::kPerCoreBwClockShare)));
  // The per-message MPI sender overhead is CPU time: it stretches with 1/f.
  EXPECT_DOUBLE_EQ(half.net.sender_overhead_s, a.net.sender_overhead_s * 2.0);
  // Wire latency and link bandwidth are not the CPU's business.
  EXPECT_DOUBLE_EQ(half.net.inter_latency_s, a.net.inter_latency_s);
  EXPECT_DOUBLE_EQ(half.net.link_bw_Bps, a.net.link_bw_Bps);
}

TEST(FrequencyScaling, PowerFollowsSuperlinearLaw) {
  const auto a = mach::cluster_a();
  const auto up = mach::scale_frequency(a, 1.25);
  // Dynamic per-core power grows faster than frequency.
  EXPECT_GT(up.cpu.core_power_busy_simd_w / a.cpu.core_power_busy_simd_w,
            1.25);
  EXPECT_GT(up.cpu.idle_power_per_socket_w, a.cpu.idle_power_per_socket_w);
  // Down-clocking: the baseline's static-leakage share does not scale down
  // with frequency -- the race-to-idle premise.
  const auto down = mach::scale_frequency(a, 0.7);
  EXPECT_GT(down.cpu.idle_power_per_socket_w / a.cpu.idle_power_per_socket_w,
            0.7);
  EXPECT_LT(down.cpu.core_power_busy_simd_w / a.cpu.core_power_busy_simd_w,
            0.7);
}

TEST(FrequencyScaling, IdentityAtFactorOne) {
  const auto a = mach::cluster_a();
  const auto same = mach::scale_frequency(a, 1.0);
  EXPECT_DOUBLE_EQ(same.cpu.base_clock_hz, a.cpu.base_clock_hz);
  EXPECT_DOUBLE_EQ(same.cpu.idle_power_per_socket_w,
                   a.cpu.idle_power_per_socket_w);
  EXPECT_DOUBLE_EQ(same.cpu.per_core_mem_bw_Bps, a.cpu.per_core_mem_bw_Bps);
  EXPECT_DOUBLE_EQ(same.net.sender_overhead_s, a.net.sender_overhead_s);
}

TEST(FrequencyScaling, RejectsNonPositiveFactor) {
  EXPECT_THROW(mach::scale_frequency(mach::cluster_a(), 0.0),
               std::invalid_argument);
  EXPECT_THROW(mach::scale_frequency(mach::cluster_a(), -1.0),
               std::invalid_argument);
}

TEST(FrequencyScaling, MemoryBoundCodeBarelySlowsWhenClockedDown) {
  // The classic DVFS result the paper's race-to-idle analysis builds on:
  // clocking down hurts compute-bound codes ~linearly but memory-bound
  // codes barely at all (their bottleneck is DRAM).
  const auto a = mach::cluster_a();
  const auto slow = mach::scale_frequency(a, 0.7);

  auto time_of = [](const mach::ClusterSpec& cl, const char* name) {
    auto app = core::make_app(name, core::Workload::kTiny);
    app->set_measured_steps(2);
    app->set_warmup_steps(1);
    return core::run_benchmark(*app, cl, 18).seconds_per_step();
  };
  const double sph_ratio = time_of(slow, "sph-exa") / time_of(a, "sph-exa");
  const double tea_ratio = time_of(slow, "tealeaf") / time_of(a, "tealeaf");
  EXPECT_GT(sph_ratio, 1.35);  // ~1/0.7
  EXPECT_LT(tea_ratio, 1.05);  // bandwidth-bound: frequency-insensitive
}

TEST(FrequencyScaling, DownclockingPaysOnlyForMemoryBoundCode) {
  // The classic result (Hager et al. 2016, cited by the paper): clocking
  // down saves energy for bandwidth-bound code (same runtime, less power),
  // but not for compute-bound code (runtime stretches 1/f while the
  // baseline keeps burning).
  const auto a = mach::cluster_a();
  const auto slow = mach::scale_frequency(a, 0.7);
  auto energy_of = [](const mach::ClusterSpec& cl, const char* name) {
    auto app = core::make_app(name, core::Workload::kTiny);
    app->set_measured_steps(2);
    app->set_warmup_steps(1);
    return core::run_benchmark(*app, cl, 18).power().total_energy_j();
  };
  const double tea_ratio =
      energy_of(slow, "tealeaf") / energy_of(a, "tealeaf");
  const double sph_ratio =
      energy_of(slow, "sph-exa") / energy_of(a, "sph-exa");
  EXPECT_LT(tea_ratio, 0.85);  // memory bound: clear savings
  EXPECT_GT(sph_ratio, 0.95);  // compute bound: little or negative benefit
}

TEST(FrequencyScaling, CommCostGrowsAtLowClockViaSenderOverhead) {
  // Regression for the DVFS bug: scale_frequency used to leave the
  // per-message sender overhead (CPU time!) and the single-core achievable
  // bandwidth untouched, so downclocked runs understated communication and
  // latency-bound cost.  Undoing just those two terms must make the
  // downclocked run strictly faster -- i.e. the fix strictly adds cost.
  const auto a = mach::cluster_a();
  const auto fixed = mach::scale_frequency(a, 0.5);
  auto legacy = fixed;
  legacy.net.sender_overhead_s = a.net.sender_overhead_s;
  legacy.cpu.per_core_mem_bw_Bps = a.cpu.per_core_mem_bw_Bps;

  auto time_of = [](const mach::ClusterSpec& cl, const char* name) {
    auto app = core::make_app(name, core::Workload::kTiny);
    app->set_measured_steps(2);
    app->set_warmup_steps(1);
    return core::run_benchmark(*app, cl, 18).seconds_per_step();
  };
  // minisweep's wavefront exchanges many small messages: overhead-dominated.
  EXPECT_GT(time_of(fixed, "minisweep"), time_of(legacy, "minisweep"));
  EXPECT_GT(time_of(fixed, "hpgmgfv"), time_of(legacy, "hpgmgfv"));
}

TEST(FrequencyScaling, ZplotCommBoundAppSlowsAtLowClock) {
  // zplot-level view of the same fix: the half-clock curve of a
  // message-heavy app is now visibly slower than the nominal curve at the
  // same core count (the bug made it look almost frequency-insensitive).
  const auto a = mach::cluster_a();
  core::ZplotOptions opts;
  opts.core_counts = {18};
  opts.frequency_factors = {1.0, 0.5};
  opts.measured_steps = 2;
  opts.warmup_steps = 1;
  const auto z = core::zplot_sweep("minisweep", a, opts);
  ASSERT_EQ(z.curves.size(), 2u);
  ASSERT_EQ(z.curves[0].points.size(), 1u);
  ASSERT_EQ(z.curves[1].points.size(), 1u);
  const double slowdown =
      z.curves[0].points[0].speedup / z.curves[1].points[0].speedup;
  EXPECT_GT(slowdown, 1.10);
}

}  // namespace
