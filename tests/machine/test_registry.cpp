// Machine registry: builtin contents, alias resolution, bit-identical
// round-trips, descriptor-file loading, and the rejection surface of the
// parser/validator (malformed JSON, unknown keys, missing fields, wrong
// types, physically inconsistent values).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "machine/registry.hpp"
#include "machine/specs.hpp"
#include "util/json.hpp"

namespace mach = spechpc::mach;
namespace fs = std::filesystem;

namespace {

/// Replaces the first occurrence of `from` in a copy of `text`; the fixture
/// asserts the needle exists so a renamed field can't silently turn a
/// mutation test into a no-op.
std::string patched(std::string text, const std::string& from,
                    const std::string& to) {
  const auto pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << "patch needle not found: " << from;
  if (pos != std::string::npos) text.replace(pos, from.size(), to);
  return text;
}

std::string valid_descriptor() {
  return std::string(mach::Registry::builtin().descriptor_text("cluster-a"));
}

/// Expects parse_machine_json(text) to throw with `needle` in the message.
void expect_rejected(const std::string& text, const std::string& needle) {
  try {
    mach::parse_machine_json(text);
    FAIL() << "descriptor accepted; expected error containing: " << needle;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "got: " << e.what();
  }
}

class TempFile {
 public:
  explicit TempFile(const std::string& contents) {
    path_ = (fs::temp_directory_path() /
             ("spechpc-registry-" +
              std::to_string(reinterpret_cast<std::uintptr_t>(this)) +
              ".json"))
                .string();
    std::ofstream(path_) << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Registry, BuiltinListsAllShippedMachines) {
  const std::vector<std::string> want = {"cluster-a", "cluster-b",
                                         "sandy-bridge", "amd-genoa",
                                         "spr-pvc", "fpga-u280"};
  EXPECT_EQ(mach::Registry::builtin().names(), want);
  for (const std::string& id : want)
    EXPECT_TRUE(mach::Registry::builtin().contains(id)) << id;
  EXPECT_FALSE(mach::Registry::builtin().contains("cluster-c"));
}

TEST(Registry, PaperClustersLoadBitIdenticalToHardCodedSpecs) {
  const auto& reg = mach::Registry::builtin();
  // machine_to_json prints every double with %.17g, so string equality here
  // is bit equality of every numeric field.
  EXPECT_EQ(mach::machine_to_json(reg.get("cluster-a")),
            mach::machine_to_json(mach::cluster_a()));
  EXPECT_EQ(mach::machine_to_json(reg.get("cluster-b")),
            mach::machine_to_json(mach::cluster_b()));
  EXPECT_EQ(mach::machine_to_json(reg.get("sandy-bridge")),
            mach::machine_to_json(mach::sandy_bridge_reference()));
}

TEST(Registry, LegacyAliasesAndSpecNamesResolve) {
  const auto& reg = mach::Registry::builtin();
  for (const std::string alias : {"A", "cluster-a", "ClusterA"}) {
    EXPECT_TRUE(reg.contains(alias)) << alias;
    EXPECT_EQ(reg.canonical_id(alias), "cluster-a") << alias;
    EXPECT_EQ(reg.get(alias).name, "ClusterA") << alias;
  }
  for (const std::string alias : {"B", "cluster-b", "ClusterB"}) {
    EXPECT_EQ(reg.canonical_id(alias), "cluster-b") << alias;
  }
  // Aliases are exact: lowercase CLI spellings are normalized by the CLI,
  // not the registry.
  EXPECT_FALSE(reg.contains("CLUSTER-A"));
  EXPECT_THROW(static_cast<void>(reg.canonical_id("nope")),
               std::runtime_error);
}

TEST(Registry, EveryBuiltinRoundTripsBitIdentically) {
  const auto& reg = mach::Registry::builtin();
  for (const std::string& id : reg.names()) {
    const mach::ClusterSpec& spec = reg.get(id);
    const std::string canon = mach::machine_to_json(spec);
    const mach::ClusterSpec back = mach::parse_machine_json(canon);
    EXPECT_EQ(mach::machine_to_json(back), canon) << id;
    // Spot-check raw bit patterns on fields with awkward literals.
    EXPECT_EQ(std::memcmp(&back.cpu.base_clock_hz, &spec.cpu.base_clock_hz,
                          sizeof(double)),
              0)
        << id;
    EXPECT_EQ(std::memcmp(&back.net.sender_overhead_s,
                          &spec.net.sender_overhead_s, sizeof(double)),
              0)
        << id;
    EXPECT_EQ(back.backend, spec.backend) << id;
  }
}

TEST(Registry, ShippedDescriptorTextMatchesRegistrySpec) {
  const auto& reg = mach::Registry::builtin();
  for (const std::string& id : reg.names()) {
    const mach::MachineDescriptor d =
        mach::parse_machine_descriptor(reg.descriptor_text(id));
    EXPECT_EQ(d.id, id);
    EXPECT_EQ(mach::machine_to_json(d.spec),
              mach::machine_to_json(reg.get(id)));
  }
}

TEST(Registry, NewBackendsCarryBackendTagAndAxis) {
  const auto& reg = mach::Registry::builtin();
  EXPECT_EQ(reg.get("amd-genoa").backend, mach::Backend::kCpu);
  EXPECT_EQ(reg.get("spr-pvc").backend, mach::Backend::kGpu);
  EXPECT_EQ(reg.get("fpga-u280").backend, mach::Backend::kFpga);
  EXPECT_STREQ(mach::resource_axis(mach::Backend::kFpga), "replications");
  EXPECT_STREQ(mach::resource_axis(mach::Backend::kGpu), "cores");
  EXPECT_STREQ(mach::to_string(mach::Backend::kGpu), "gpu");
}

TEST(Registry, ResolveLoadsDescriptorFiles) {
  const TempFile file(valid_descriptor());
  const mach::ClusterSpec spec = mach::Registry::builtin().resolve(file.path());
  EXPECT_EQ(mach::machine_to_json(spec),
            mach::machine_to_json(mach::cluster_a()));
}

TEST(Registry, ResolveRejectsUnknownNamesWithBuiltinList) {
  try {
    mach::Registry::builtin().resolve("warp-drive");
    FAIL() << "unknown machine resolved";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("warp-drive"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cluster-a"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fpga-u280"), std::string::npos) << msg;
  }
}

TEST(Registry, ResolveRejectsUnreadableFiles) {
  try {
    mach::Registry::builtin().resolve("/nonexistent/machine.json");
    FAIL() << "unreadable file resolved";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot read"), std::string::npos)
        << e.what();
  }
}

TEST(RegistryValidation, RejectsIndivisibleDomainCounts) {
  mach::ClusterSpec spec = mach::cluster_a();  // 36 cores/socket
  spec.cpu.domains_per_socket = 5;
  try {
    mach::validate_machine(spec);
    FAIL() << "indivisible domain count accepted";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("36"), std::string::npos) << msg;
    EXPECT_NE(msg.find("5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("divisible"), std::string::npos) << msg;
  }
  // The same rule holds on the JSON path.
  expect_rejected(patched(valid_descriptor(), "\"domains_per_socket\": 2",
                          "\"domains_per_socket\": 7"),
                  "divisible");
}

TEST(RegistryValidation, RejectsPhysicallyInconsistentRates) {
  // Saturation above theoretical peak.
  mach::ClusterSpec spec = mach::cluster_a();
  spec.cpu.sat_bw_per_domain_Bps = spec.cpu.theor_bw_per_domain_Bps * 2.0;
  EXPECT_THROW(mach::validate_machine(spec), std::runtime_error);
  // Single core faster than the saturated domain.
  spec = mach::cluster_a();
  spec.cpu.per_core_mem_bw_Bps = spec.cpu.sat_bw_per_domain_Bps * 2.0;
  EXPECT_THROW(mach::validate_machine(spec), std::runtime_error);
  // SIMD slower than scalar.
  spec = mach::cluster_a();
  spec.cpu.simd_flops_per_cycle = spec.cpu.scalar_flops_per_cycle / 2.0;
  EXPECT_THROW(mach::validate_machine(spec), std::runtime_error);
  // DRAM max below idle.
  spec = mach::cluster_a();
  spec.cpu.dram_max_power_per_domain_w =
      spec.cpu.dram_idle_power_per_domain_w - 1.0;
  EXPECT_THROW(mach::validate_machine(spec), std::runtime_error);
}

TEST(RegistryValidation, RejectsNonPositiveValues) {
  expect_rejected(patched(valid_descriptor(), "\"base_clock_hz\": 2.4e9",
                          "\"base_clock_hz\": 0"),
                  "base_clock_hz");
  expect_rejected(patched(valid_descriptor(), "\"link_bw_Bps\": 12.5e9",
                          "\"link_bw_Bps\": -1"),
                  "link_bw_Bps");
  expect_rejected(patched(valid_descriptor(), "\"max_nodes\": 24",
                          "\"max_nodes\": 0"),
                  "max_nodes");
  expect_rejected(patched(valid_descriptor(), "\"cores_per_socket\": 36",
                          "\"cores_per_socket\": 0"),
                  "cores_per_socket");
}

TEST(RegistryParsing, RejectsUnknownKeys) {
  expect_rejected(
      patched(valid_descriptor(), "\"schema_version\": 1",
              "\"schema_version\": 1, \"warp_factor\": 9"),
      "warp_factor");
  expect_rejected(patched(valid_descriptor(), "\"base_clock_hz\"",
                          "\"boost_clock_hz\""),
                  "boost_clock_hz");
}

TEST(RegistryParsing, RejectsMissingRequiredFields) {
  expect_rejected(patched(valid_descriptor(),
                          "\"backend\": \"cpu\",", ""),
                  "backend");
  expect_rejected(patched(valid_descriptor(),
                          ",\n    \"sender_overhead_s\": 0.3e-6", ""),
                  "sender_overhead_s");
}

TEST(RegistryParsing, RejectsWrongTypes) {
  expect_rejected(patched(valid_descriptor(), "\"base_clock_hz\": 2.4e9",
                          "\"base_clock_hz\": \"fast\""),
                  "base_clock_hz");
  expect_rejected(patched(valid_descriptor(), "\"l3_is_victim_cache\": true",
                          "\"l3_is_victim_cache\": 1"),
                  "l3_is_victim_cache");
}

TEST(RegistryParsing, RejectsBadBackendAndSchemaVersion) {
  expect_rejected(patched(valid_descriptor(), "\"backend\": \"cpu\"",
                          "\"backend\": \"asic\""),
                  "backend");
  expect_rejected(patched(valid_descriptor(), "\"schema_version\": 1",
                          "\"schema_version\": 99"),
                  "schema_version");
}

TEST(RegistryParsing, RejectsMalformedDocuments) {
  expect_rejected("", "machine descriptor");
  expect_rejected("[1,2,3]", "object");
  expect_rejected("{\"schema_version\":1", "machine descriptor");
  const std::string text = valid_descriptor();
  expect_rejected(text.substr(0, text.size() / 2), "machine descriptor");
  // Duplicate keys are a parser-level error.
  expect_rejected(patched(text, "\"schema_version\": 1",
                          "\"schema_version\": 1, \"schema_version\": 1"),
                  "duplicate");
}

TEST(RegistryParsing, RejectsOversizedInput) {
  std::string huge = valid_descriptor();
  huge.replace(huge.find('{') + 1, 0,
               "\"pad\": \"" + std::string(spechpc::util::kMaxJsonBytes, 'x') +
                   "\",");
  EXPECT_THROW(static_cast<void>(mach::parse_machine_json(huge)),
               std::runtime_error);
}

}  // namespace
