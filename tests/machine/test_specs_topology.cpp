// Hardware specs vs the paper's Table 3 and block-placement semantics.
#include <gtest/gtest.h>

#include "machine/machine.hpp"

namespace mach = spechpc::mach;
namespace sim = spechpc::sim;

namespace {

TEST(Specs, ClusterAMatchesTable3) {
  const auto a = mach::cluster_a();
  EXPECT_EQ(a.cpu.cores_per_node(), 72);
  EXPECT_EQ(a.cpu.domains_per_node(), 4);
  EXPECT_EQ(a.cpu.cores_per_domain(), 18);
  EXPECT_DOUBLE_EQ(a.cpu.base_clock_hz, 2.4e9);
  EXPECT_DOUBLE_EQ(a.cpu.tdp_per_socket_w, 250.0);
  EXPECT_NEAR(a.cpu.theor_bw_per_domain_Bps * a.cpu.domains_per_node(),
              409.6e9, 1e6);
}

TEST(Specs, ClusterBMatchesTable3) {
  const auto b = mach::cluster_b();
  EXPECT_EQ(b.cpu.cores_per_node(), 104);
  EXPECT_EQ(b.cpu.domains_per_node(), 8);
  EXPECT_EQ(b.cpu.cores_per_domain(), 13);
  EXPECT_DOUBLE_EQ(b.cpu.base_clock_hz, 2.0e9);
  EXPECT_DOUBLE_EQ(b.cpu.tdp_per_socket_w, 350.0);
  EXPECT_NEAR(b.cpu.theor_bw_per_domain_Bps * b.cpu.domains_per_node(),
              614.4e9, 1e6);
}

TEST(Specs, PaperRatiosBOverA) {
  const auto a = mach::cluster_a();
  const auto b = mach::cluster_b();
  // Sect. 4.1.2: peak ratio 1.2, bandwidth ratio 1.5.
  EXPECT_NEAR(b.cpu.peak_node_flops() / a.cpu.peak_node_flops(), 1.20, 0.01);
  const double bw_ratio = (b.cpu.theor_bw_per_domain_Bps * 8) /
                          (a.cpu.theor_bw_per_domain_Bps * 4);
  EXPECT_NEAR(bw_ratio, 1.5, 0.01);
  // Footnote 7: ~45% more L3 and 60% more L2 per core on ClusterB.
  const double l3_per_core_a = a.cpu.l3_per_socket_bytes / 36;
  const double l3_per_core_b = b.cpu.l3_per_socket_bytes / 52;
  EXPECT_NEAR(l3_per_core_b / l3_per_core_a, 1.35, 0.15);
  EXPECT_NEAR(b.cpu.l2_per_core_bytes / a.cpu.l2_per_core_bytes, 1.6, 0.01);
}

TEST(Specs, BaselinePowerFractionsMatchPaper) {
  const auto a = mach::cluster_a();
  const auto b = mach::cluster_b();
  const auto sb = mach::sandy_bridge_reference();
  EXPECT_NEAR(a.cpu.idle_power_per_socket_w / a.cpu.tdp_per_socket_w, 0.40,
              0.03);
  EXPECT_NEAR(b.cpu.idle_power_per_socket_w / b.cpu.tdp_per_socket_w, 0.50,
              0.03);
  EXPECT_LT(sb.cpu.idle_power_per_socket_w / sb.cpu.tdp_per_socket_w, 0.20);
}

TEST(Network, LogGpDeliveryNeverPrecedesSenderInjection) {
  // With a per-message CPU overhead larger than the wire latency, a plain
  // "L + bytes/bw" arrival would have the receiver see the message while the
  // sender is still injecting it.  The model must keep arrival >= o + n/bw.
  const auto a = mach::cluster_a();
  mach::InterconnectSpec slow_cpu = a.net;
  slow_cpu.sender_overhead_s = 5e-6;  // > both latencies
  ASSERT_GT(slow_cpu.sender_overhead_s, slow_cpu.intra_latency_s);
  ASSERT_GT(slow_cpu.sender_overhead_s, slow_cpu.inter_latency_s);
  const mach::HdrNetworkModel net(slow_cpu);
  const double bytes = 4096.0;

  const sim::Placement intra = mach::block_placement(a, 2);
  const auto ci = net.transfer(0, 1, intra, bytes);
  EXPECT_GE(ci.in_flight_s, ci.sender_busy_s);
  EXPECT_DOUBLE_EQ(ci.in_flight_s,
                   slow_cpu.sender_overhead_s + bytes / slow_cpu.intra_bw_Bps);

  const sim::Placement inter = mach::block_placement(a, 73);
  const auto cx = net.transfer(0, 72, inter, bytes);
  EXPECT_GE(cx.in_flight_s, cx.sender_busy_s);
  EXPECT_DOUBLE_EQ(cx.in_flight_s,
                   slow_cpu.sender_overhead_s + bytes / slow_cpu.link_bw_Bps);
}

TEST(Network, ShippedHdrSpecsKeepPlainLatencyTerm) {
  // On the shipped HDR100 specs L > o, so the causality clamp is exactly the
  // old L + n/bw cost -- pinned so spec edits that flip this get noticed.
  for (const auto& cl : {mach::cluster_a(), mach::cluster_b()}) {
    ASSERT_GT(cl.net.intra_latency_s, cl.net.sender_overhead_s) << cl.name;
    ASSERT_GT(cl.net.inter_latency_s, cl.net.sender_overhead_s) << cl.name;
    const mach::HdrNetworkModel net(cl.net);
    const sim::Placement p = mach::block_placement(cl, 2);
    const double bytes = 65536.0;
    const auto c = net.transfer(0, 1, p, bytes);
    EXPECT_DOUBLE_EQ(c.in_flight_s,
                     cl.net.intra_latency_s + bytes / cl.net.intra_bw_Bps)
        << cl.name;
  }
}

TEST(Topology, BlockPlacementFillsDomainsInOrder) {
  const auto a = mach::cluster_a();
  const sim::Placement p = mach::block_placement(a, 40);
  // First 18 ranks on domain 0, next 18 on domain 1, rest on domain 2.
  EXPECT_EQ(p.of(0).domain, 0);
  EXPECT_EQ(p.of(17).domain, 0);
  EXPECT_EQ(p.of(18).domain, 1);
  EXPECT_EQ(p.of(35).domain, 1);
  EXPECT_EQ(p.of(36).domain, 2);
  EXPECT_EQ(p.of(36).socket, 1);  // second socket starts at core 36
  EXPECT_EQ(p.of(39).node, 0);
  EXPECT_EQ(p.domains_used(), 3);
  EXPECT_EQ(p.ranks_in_domain_of(0), 18);
  EXPECT_EQ(p.ranks_in_domain_of(39), 4);
}

TEST(Topology, MultiNodePlacement) {
  const auto a = mach::cluster_a();
  const sim::Placement p = mach::block_placement(a, 144);  // 2 full nodes
  EXPECT_EQ(p.nodes_used(), 2);
  EXPECT_EQ(p.of(71).node, 0);
  EXPECT_EQ(p.of(72).node, 1);
  EXPECT_FALSE(p.same_node(71, 72));
  EXPECT_TRUE(p.same_node(0, 71));
}

TEST(Topology, PlacementOnNodesSpreadsEvenly) {
  const auto b = mach::cluster_b();
  const sim::Placement p = mach::block_placement_on_nodes(b, 416, 4);
  EXPECT_EQ(p.nodes_used(), 4);
  for (int r = 0; r < 416; ++r) EXPECT_EQ(p.of(r).node, r / 104);
}

TEST(Topology, RejectsOversizedJobs) {
  const auto a = mach::cluster_a();
  EXPECT_THROW(mach::block_placement(a, 24 * 72 + 1), std::invalid_argument);
  EXPECT_THROW(mach::block_placement_on_nodes(a, 73, 1),
               std::invalid_argument);
  EXPECT_THROW(mach::block_placement(a, 0), std::invalid_argument);
}

}  // namespace
