// NoisyComputeModel determinism: the sampler is a pure function of
// (seed, rank, phase time), holds no mutable state, and therefore produces
// bit-identical results when one model instance is shared across parallel
// sweep workers.
#include <gtest/gtest.h>

#include <vector>

#include "core/spechpc.hpp"
#include "core/sweep.hpp"
#include "machine/noise.hpp"

namespace core = spechpc::core;
namespace mach = spechpc::mach;
namespace sim = spechpc::sim;

namespace {

TEST(NoiseDeterminism, SampleIsAPureFunctionOfRankAndPhase) {
  const auto cluster = mach::cluster_a();
  const mach::RooflineComputeModel inner(cluster, {});
  const mach::NoisyComputeModel noisy(&inner, 0.1, 42);
  const sim::Placement p = mach::block_placement(cluster, 4);
  sim::KernelWork w;
  w.flops_scalar = 1e6;
  w.traffic.mem_bytes = 1e6;

  // Same (rank, now): identical outcome on every call, in any order.
  const auto a = noisy.evaluate_at(1, p, w, 0.125);
  const auto b = noisy.evaluate_at(2, p, w, 0.5);
  const auto a2 = noisy.evaluate_at(1, p, w, 0.125);
  EXPECT_EQ(a.seconds, a2.seconds);
  EXPECT_NE(a.seconds, b.seconds);  // rank and phase decorrelate the noise

  // Noise never speeds work up and respects the amplitude bound.
  const auto clean = inner.evaluate_at(1, p, w, 0.125);
  EXPECT_GE(a.seconds, clean.seconds);
  EXPECT_LE(a.seconds, clean.seconds * 1.1 + 1e-15);
}

TEST(NoiseDeterminism, DistinctSeedsAndRanksDecorrelate) {
  const auto cluster = mach::cluster_a();
  const mach::RooflineComputeModel inner(cluster, {});
  const sim::Placement p = mach::block_placement(cluster, 8);
  sim::KernelWork w;
  w.flops_scalar = 1e6;
  const mach::NoisyComputeModel n1(&inner, 0.2, 1);
  const mach::NoisyComputeModel n2(&inner, 0.2, 2);
  EXPECT_NE(n1.evaluate_at(0, p, w, 0.25).seconds,
            n2.evaluate_at(0, p, w, 0.25).seconds);
  EXPECT_NE(n1.evaluate_at(3, p, w, 0.25).seconds,
            n1.evaluate_at(4, p, w, 0.25).seconds);
}

TEST(NoiseDeterminism, ParallelNoisySweepsAreBitIdenticalToSerial) {
  // The regression this guards: the old sampler advanced a mutable counter
  // per call, so engine-internal evaluation order (and worker interleaving)
  // changed the noise stream.  The hash sampler must give every job the
  // same answer no matter how many workers run the sweep.
  auto run_point = [](std::size_t ranks) {
    auto app = core::make_app("tealeaf", core::Workload::kTiny);
    app->set_measured_steps(2);
    app->set_warmup_steps(1);
    core::RunOptions opts;
    opts.os_noise_amplitude = 0.05;
    opts.os_noise_seed = 7;
    return core::run_benchmark(*app, mach::cluster_a(),
                               static_cast<int>(ranks) + 1, opts)
        .wall_s();
  };
  core::SweepRunner serial(1);
  const std::vector<double> want = serial.map<double>(8, run_point);
  for (int jobs : {2, 4}) {
    core::SweepRunner pool(jobs);
    const std::vector<double> got = pool.map<double>(8, run_point);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
      EXPECT_EQ(got[i], want[i]) << "jobs=" << jobs << " point=" << i;
  }
}

TEST(NoiseDeterminism, RepeatedNoisyRunsAreBitIdentical) {
  auto once = [] {
    auto app = core::make_app("lbm", core::Workload::kTiny);
    app->set_measured_steps(2);
    app->set_warmup_steps(1);
    core::RunOptions opts;
    opts.os_noise_amplitude = 0.1;
    opts.os_noise_seed = 3;
    return core::run_benchmark(*app, mach::cluster_a(), 4, opts).wall_s();
  };
  EXPECT_EQ(once(), once());
}

}  // namespace
