// Roofline model: ceilings, bandwidth saturation, cache-fit reduction,
// victim-L3 traffic, alignment pathologies, and ablation switches.
#include <gtest/gtest.h>

#include "machine/machine.hpp"

namespace mach = spechpc::mach;
namespace sim = spechpc::sim;

namespace {

sim::KernelWork memory_streaming(double bytes) {
  sim::KernelWork w;
  w.flops_simd = bytes / 8.0;  // low intensity: 1 flop per double
  w.traffic = {bytes, bytes, bytes};
  w.working_set_bytes = 1e12;  // never fits in cache
  w.label = "stream";
  return w;
}

sim::KernelWork compute_heavy(double flops) {
  sim::KernelWork w;
  w.flops_simd = flops;
  w.traffic = {flops * 1e-3, flops * 1e-3, flops * 1e-3};
  w.working_set_bytes = 1e12;
  w.label = "dgemm-ish";
  return w;
}

TEST(Roofline, ComputeBoundHitsPeak) {
  const auto a = mach::cluster_a();
  mach::RooflineComputeModel model(a);
  auto p = mach::block_placement(a, 1);
  const auto out = model.evaluate(0, p, compute_heavy(76.8e9));
  // 76.8 Gflop at 2.4 GHz * 32 flop/cy = 1 second.
  EXPECT_NEAR(out.seconds, 1.0, 1e-6);
  EXPECT_NEAR(out.core_utilization, 1.0, 1e-6);
}

TEST(Roofline, ScalarFlopsAreSlower) {
  const auto a = mach::cluster_a();
  mach::RooflineComputeModel model(a);
  auto p = mach::block_placement(a, 1);
  sim::KernelWork w = compute_heavy(9.6e9);
  const double t_simd = model.evaluate(0, p, w).seconds;
  w.flops_scalar = w.flops_simd;
  w.flops_simd = 0.0;
  const double t_scalar = model.evaluate(0, p, w).seconds;
  EXPECT_NEAR(t_scalar / t_simd, 8.0, 1e-6);  // 32 vs 4 flops/cycle
}

TEST(Roofline, SingleCoreGetsSingleCoreBandwidth) {
  const auto a = mach::cluster_a();
  mach::RooflineComputeModel model(a);
  auto p = mach::block_placement(a, 1);
  const auto out = model.evaluate(0, p, memory_streaming(14e9));
  EXPECT_NEAR(out.seconds, 1.0, 1e-3);  // 14 GB at 14 GB/s per-core bw
}

TEST(Roofline, DomainBandwidthSaturates) {
  const auto a = mach::cluster_a();
  mach::RooflineComputeModel model(a);
  // 18 ranks on one domain: each gets 76.5/18 GB/s, not 14 GB/s.
  auto p = mach::block_placement(a, 18);
  const auto out = model.evaluate(0, p, memory_streaming(1e9));
  EXPECT_NEAR(out.seconds, 1e9 / (76.5e9 / 18.0), 1e-3);
  // Aggregate: 18 ranks * 1 GB / t = saturated bandwidth.
  EXPECT_NEAR(18.0 * 1e9 / out.seconds, 76.5e9, 1e7);
}

TEST(Roofline, NaiveLinearAblationRemovesSaturation) {
  const auto a = mach::cluster_a();
  mach::RooflineOptions opts;
  opts.naive_linear_bandwidth = true;
  mach::RooflineComputeModel model(a, opts);
  auto p = mach::block_placement(a, 18);
  sim::KernelWork w;  // pure DRAM stream, no cache traffic modeled
  w.flops_simd = 1e6;
  w.traffic = {14e9, 0.0, 0.0};
  w.working_set_bytes = 1e12;
  const auto out = model.evaluate(0, p, w);
  EXPECT_NEAR(out.seconds, 1.0, 1e-3);  // full per-core bw despite 18 ranks
}

TEST(Roofline, CacheFitRemovesMemoryTraffic) {
  const auto a = mach::cluster_a();
  mach::RooflineComputeModel model(a);
  auto p = mach::block_placement(a, 1);
  sim::KernelWork w = memory_streaming(1e9);
  w.working_set_bytes = 1e6;  // 1 MB: fits into L2+L3 share easily
  const auto out = model.evaluate(0, p, w);
  EXPECT_LT(out.effective.mem_bytes, 0.05 * 1e9);
  // Larger-than-cache working set keeps full traffic.
  w.working_set_bytes = 1e12;
  EXPECT_NEAR(model.evaluate(0, p, w).effective.mem_bytes, 1e9, 1.0);
}

TEST(Roofline, CacheFitDependsOnDomainOccupancy) {
  // Working set per rank ~ L3 share at low occupancy, exceeds it at high.
  const auto a = mach::cluster_a();
  mach::RooflineComputeModel model(a);
  sim::KernelWork w = memory_streaming(1e9);
  w.working_set_bytes = 20e6;  // 20 MB vs 27 MB L3 per domain
  auto p1 = mach::block_placement(a, 1);
  auto p18 = mach::block_placement(a, 18);
  const double mem1 = model.evaluate(0, p1, w).effective.mem_bytes;
  const double mem18 = model.evaluate(0, p18, w).effective.mem_bytes;
  EXPECT_LT(mem1, mem18);  // exclusive L3 -> most traffic gone
}

TEST(Roofline, VictimL3SeesMemoryTraffic) {
  const auto a = mach::cluster_a();
  mach::RooflineComputeModel with(a);
  mach::RooflineOptions opts;
  opts.model_victim_l3 = false;
  mach::RooflineComputeModel without(a, opts);
  auto p = mach::block_placement(a, 1);
  const auto w = memory_streaming(1e9);
  EXPECT_NEAR(with.evaluate(0, p, w).effective.l3_bytes, 1.6e9, 1e6);
  EXPECT_NEAR(without.evaluate(0, p, w).effective.l3_bytes, 1e9, 1e6);
}

TEST(AlignmentEffect, PageAlignedManyStreamsIsSlow) {
  const auto eff = mach::alignment_effect(37, 32768);  // 32 KiB rows
  EXPECT_GT(eff.time_penalty, 1.5);
  EXPECT_DOUBLE_EQ(eff.l2_traffic_factor, 1.0);  // TLB: slow, no extra traffic
}

TEST(AlignmentEffect, NearPageAlignedIsModeratelySlow) {
  const auto eff = mach::alignment_effect(37, 4096 * 3 + 64);
  EXPECT_NEAR(eff.time_penalty, 1.4, 1e-9);
}

TEST(AlignmentEffect, SetConflictsCauseExcessL2Traffic) {
  const auto eff = mach::alignment_effect(37, 4096 + 512);  // 512B periodic
  EXPECT_GT(eff.l2_traffic_factor, 2.0);
}

TEST(AlignmentEffect, FewStreamsOrOddStrideIsClean) {
  EXPECT_DOUBLE_EQ(mach::alignment_effect(5, 32768).time_penalty, 1.0);
  EXPECT_DOUBLE_EQ(mach::alignment_effect(37, 10928).time_penalty, 1.0);
  EXPECT_DOUBLE_EQ(mach::alignment_effect(37, 10928).l2_traffic_factor, 1.0);
}

TEST(Roofline, AlignmentPathologySlowsKernel) {
  const auto a = mach::cluster_a();
  mach::RooflineComputeModel model(a);
  auto p = mach::block_placement(a, 1);
  sim::KernelWork w;
  w.flops_simd = 76.8e9;
  w.traffic = {1e6, 1e6, 1e6};
  w.working_set_bytes = 1e12;
  w.concurrent_streams = 37;
  w.leading_dim_bytes = 8192;  // page-aligned
  const double bad = model.evaluate(0, p, w).seconds;
  w.leading_dim_bytes = 10928;  // clean stride
  const double good = model.evaluate(0, p, w).seconds;
  EXPECT_NEAR(bad / good, 1.7, 1e-6);
}

TEST(Roofline, ClusterBFasterForMemoryBoundByBandwidthRatio) {
  // Full-domain memory-bound work: B/A per-domain bandwidth favors A
  // (76.5 vs 60), but B has twice the domains; node-level B/A ~ 1.57.
  const auto a = mach::cluster_a();
  const auto b = mach::cluster_b();
  mach::RooflineComputeModel ma(a), mb(b);
  auto pa = mach::block_placement(a, 72);
  auto pb = mach::block_placement(b, 104);
  // Same node-level job split over ranks.
  const double total_bytes = 72e9;
  const double ta =
      ma.evaluate(0, pa, memory_streaming(total_bytes / 72)).seconds;
  const double tb =
      mb.evaluate(0, pb, memory_streaming(total_bytes / 104)).seconds;
  EXPECT_NEAR(ta / tb, (8.0 * 60.0) / (4.0 * 76.5), 0.05);
}

}  // namespace
