// Time-resolved power model: consistency with the run-averaged model across
// the whole suite, sample integration, per-region energy attribution, and
// crashed-rank accounting (a dead core draws only baseline power).
#include <gtest/gtest.h>

#include <cmath>

#include "core/runner.hpp"
#include "core/suite.hpp"
#include "machine/machine.hpp"
#include "power/energy_timeline.hpp"
#include "resilience/fault_plan.hpp"
#include "simmpi/simmpi.hpp"

namespace core = spechpc::core;
namespace mach = spechpc::mach;
namespace power = spechpc::power;
namespace sim = spechpc::sim;

namespace {

/// Relative agreement within 1e-9 (the acceptance bound on fault-free runs).
void expect_rel_near(double a, double b, const std::string& what) {
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  EXPECT_NEAR(a, b, 1e-9 * scale) << what << ": " << a << " vs " << b;
}

void check_consistency(const core::RunResult& r,
                       const mach::ClusterSpec& cluster,
                       const std::string& what) {
  const power::PowerModel model(cluster);
  const power::PowerReport& avg = r.power();
  const power::EnergyTimeline tl =
      power::analyze_timeline(model, r.engine(), 48);

  // The integrated timeline reproduces the averaged model exactly.
  expect_rel_near(tl.chip_energy_j(), avg.chip_energy_j(), what + " chip");
  expect_rel_near(tl.dram_energy_j(), avg.dram_energy_j(), what + " dram");
  expect_rel_near(tl.total_energy_j(), avg.total_energy_j(), what + " total");
  EXPECT_EQ(tl.sockets_used, avg.sockets_used) << what;
  EXPECT_EQ(tl.domains_used, avg.domains_used) << what;
  expect_rel_near(tl.wall_s(), avg.wall_s, what + " wall");

  // The rendered sample buckets integrate back to the same energies.
  double chip_j = 0.0, dram_j = 0.0;
  for (const power::PowerSample& s : tl.samples) {
    EXPECT_GT(s.t_end, s.t_begin);
    chip_j += s.chip_w * (s.t_end - s.t_begin);
    dram_j += s.dram_w * (s.t_end - s.t_begin);
  }
  expect_rel_near(chip_j, tl.chip_energy_j(), what + " chip samples");
  expect_rel_near(dram_j, tl.dram_energy_j(), what + " dram samples");

  // Per-region energies sum to the run total by construction.
  const auto rows = power::attribute_region_energy(model, r.engine(), tl);
  double sum_j = 0.0, sum_dynamic_j = 0.0;
  for (const power::RegionEnergy& row : rows) {
    sum_j += row.total_j();
    sum_dynamic_j += row.chip_dynamic_j;
  }
  expect_rel_near(sum_j, tl.total_energy_j(), what + " region sum");
  expect_rel_near(sum_dynamic_j, tl.chip_dynamic_j, what + " region dynamic");
}

TEST(EnergyTimeline, MatchesAveragedModelAcrossSuite) {
  const auto cluster = mach::cluster_a();
  for (const auto& entry : core::suite()) {
    auto app = entry.make(core::Workload::kTiny);
    app->set_measured_steps(2);
    app->set_warmup_steps(1);
    core::RunOptions opts;
    opts.trace = true;
    opts.regions = true;
    const auto r = core::run_benchmark(*app, cluster, 8, opts);
    check_consistency(r, cluster, entry.info.name);
  }
}

TEST(EnergyTimeline, MatchesAveragedModelOnClusterB) {
  const auto cluster = mach::cluster_b();
  auto app = core::make_app("lbm", core::Workload::kTiny);
  app->set_measured_steps(2);
  app->set_warmup_steps(1);
  core::RunOptions opts;
  opts.trace = true;
  opts.regions = true;
  const auto r = core::run_benchmark(*app, cluster, 13, opts);
  check_consistency(r, cluster, "lbm@B");
}

TEST(EnergyTimeline, ChipPlusDramEqualsTotal) {
  const auto cluster = mach::cluster_a();
  auto app = core::make_app("tealeaf", core::Workload::kTiny);
  app->set_measured_steps(2);
  app->set_warmup_steps(1);
  core::RunOptions opts;
  opts.trace = true;
  const auto r = core::run_benchmark(*app, cluster, 4, opts);
  const power::PowerReport& avg = r.power();
  expect_rel_near(avg.chip_energy_j() + avg.dram_energy_j(),
                  avg.total_energy_j(), "averaged split");
  const power::EnergyTimeline tl =
      power::analyze_timeline(power::PowerModel(cluster), r.engine(), 16);
  expect_rel_near(tl.chip_energy_j() + tl.dram_energy_j(),
                  tl.total_energy_j(), "timeline split");
}

TEST(EnergyTimeline, RegionAttributionFollowsTheWork) {
  const auto cluster = mach::cluster_a();
  auto app = core::make_app("tealeaf", core::Workload::kTiny);
  app->set_measured_steps(2);
  app->set_warmup_steps(1);
  core::RunOptions opts;
  opts.trace = true;
  opts.regions = true;
  const auto r = core::run_benchmark(*app, cluster, 8, opts);
  const power::PowerModel model(cluster);
  const auto tl = power::analyze_timeline(model, r.engine(), 16);
  const auto rows = power::attribute_region_energy(model, r.engine(), tl);
  // Root plus the app's named regions, each with some attributed energy.
  ASSERT_GE(rows.size(), 3u);
  bool named_with_energy = false;
  for (const auto& row : rows) {
    EXPECT_GE(row.total_j(), 0.0) << row.path;
    if (row.id != 0 && row.total_j() > 0.0) named_with_energy = true;
  }
  EXPECT_TRUE(named_with_energy);
}

TEST(EnergyTimeline, EmptyWithoutMeasuredWindow) {
  const power::EnergyTimeline tl;  // default: no window
  EXPECT_EQ(tl.wall_s(), 0.0);
  EXPECT_EQ(tl.total_energy_j(), 0.0);
  EXPECT_TRUE(tl.samples.empty());
  EXPECT_EQ(tl.avg_total_w(), 0.0);
}

// --- crashed-rank accounting ------------------------------------------------

/// Injector that hard-crashes one rank at a fixed time.
struct CrashOneRank final : sim::FaultInjector {
  int victim;
  double when;
  CrashOneRank(int r, double t) : victim(r), when(t) {}
  double next_crash_after(int rank, double t) const override {
    return (rank == victim && when > t) ? when : sim::kNoCrash;
  }
  bool hard_crashes() const override { return true; }
};

TEST(EnergyTimeline, CrashedRankDrawsOnlyBaselineAfterCrash) {
  // Two ranks each issue one 1.0 s pure-scalar kernel (SimpleComputeModel:
  // 1e9 scalar flops at 1 Gflop/s, fully port-busy).  Rank 1 dies at 0.4 s;
  // its core must account 0.4 busy seconds, not 1.0.
  const auto cluster = mach::cluster_a();
  sim::SimpleComputeModel compute;
  const CrashOneRank faults(1, 0.4);
  sim::EngineConfig cfg;
  cfg.nranks = 2;
  cfg.placement = mach::block_placement(cluster, 2);
  cfg.compute = &compute;
  cfg.faults = &faults;
  cfg.enable_trace = true;
  // A hard crash with no recovery protocol ends in a diagnosed stall, not an
  // exception: the power accounting of the degraded run is what we test.
  cfg.watchdog.on_stall = sim::WatchdogConfig::OnStall::kDiagnose;
  sim::Engine eng(cfg);
  eng.run([](sim::Comm& c) -> sim::Task<> {
    sim::KernelWork w;
    w.flops_scalar = 1e9;
    co_await c.compute(w);
  });
  ASSERT_TRUE(eng.rank_crashed(1));
  ASSERT_FALSE(eng.rank_crashed(0));
  EXPECT_DOUBLE_EQ(eng.crash_time(1), 0.4);
  EXPECT_DOUBLE_EQ(eng.crash_time(0), sim::kNoCrash);

  // Counters: the dead rank's compute interval is clamped at the crash.
  EXPECT_DOUBLE_EQ(eng.counters(0).port_busy_seconds, 1.0);
  EXPECT_DOUBLE_EQ(eng.counters(1).port_busy_seconds, 0.4);
  EXPECT_DOUBLE_EQ(eng.counters(1).time(sim::Activity::kCompute), 0.4);
  EXPECT_DOUBLE_EQ(eng.counters(1).flops_scalar, 0.4e9);

  // Analytic chip energy: one populated socket's baseline over the 1.0 s
  // wall plus 1.0 + 0.4 busy-scalar core-seconds.  Before the fix the dead
  // rank accounted the full kernel (idle + 2.0 * scalar).
  const power::PowerModel model(cluster);
  const power::PowerReport rep = model.analyze(eng);
  const double expected = cluster.cpu.idle_power_per_socket_w * 1.0 +
                          1.4 * cluster.cpu.core_power_busy_scalar_w;
  expect_rel_near(rep.chip_energy_j(), expected, "crash chip energy");

  // The timeline integration agrees on this compute-only crash run too.
  const power::EnergyTimeline tl = power::analyze_timeline(model, eng, 8);
  expect_rel_near(tl.chip_energy_j(), expected, "crash timeline energy");
}

TEST(EnergyTimeline, CheckpointRecoveryRunStaysConsistent) {
  // Transient crash consumed by the checkpoint/restart protocol: no rank is
  // frozen, the lost steps are re-executed, and the timeline-vs-averaged
  // agreement must hold like on any fault-free run.
  const auto cluster = mach::cluster_a();
  // Crash early: the first checkpoint-protocol heartbeat detects it and
  // rolls back, independent of the app's virtual-time scale.
  const auto plan = spechpc::resilience::FaultPlan::parse(R"({
    "crashes": [{"rank": 1, "time": 1e-9}],
    "checkpoint": {"interval_steps": 2, "state_bytes_per_rank": 65536,
                   "restart_delay_s": 1e-4}
  })");
  auto app = core::make_app("tealeaf", core::Workload::kTiny);
  app->set_measured_steps(4);
  app->set_warmup_steps(1);
  app->set_fault_plan(&plan);
  core::RunOptions opts;
  opts.trace = true;
  opts.regions = true;
  opts.faults = &plan;
  const auto r = core::run_benchmark(*app, cluster, 4, opts);
  EXPECT_GT(r.engine().resilience_log().rollbacks, 0);
  check_consistency(r, cluster, "checkpoint recovery");
}

}  // namespace
