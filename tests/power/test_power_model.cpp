// Power model: baseline dominance, hot vs cool codes, DRAM-bandwidth
// coupling, socket counting, energy/EDP utilities (Sect. 4.2/4.3).
#include <gtest/gtest.h>

#include <cmath>

#include "machine/machine.hpp"
#include "power/power_model.hpp"
#include "simmpi/simmpi.hpp"

namespace mach = spechpc::mach;
namespace sim = spechpc::sim;
namespace power = spechpc::power;

namespace {

// Runs `nranks` ranks of pure compute (hot) or pure memory streaming (cool)
// on ClusterA and returns the power report.
power::PowerReport run_and_analyze(const mach::ClusterSpec& cluster,
                                   int nranks, bool hot) {
  mach::RooflineComputeModel compute(cluster);
  mach::HdrNetworkModel net(cluster.net);
  sim::EngineConfig cfg;
  cfg.nranks = nranks;
  cfg.placement = mach::block_placement(cluster, nranks);
  cfg.compute = &compute;
  cfg.network = &net;
  sim::Engine eng(cfg);
  eng.run([&](sim::Comm& c) -> sim::Task<> {
    sim::KernelWork w;
    if (hot) {
      w.flops_simd = 0.8 * 76.8e9;  // sph-exa-like SIMD mix
      w.flops_scalar = 0.2 * 76.8e9;
      w.traffic = {1e6, 1e6, 1e6};
    } else {
      w.flops_simd = 1e8;
      w.traffic = {5e9, 5e9, 5e9};
    }
    w.working_set_bytes = 1e12;
    co_await c.compute(w);
  });
  power::PowerModel pm(cluster);
  return pm.analyze(eng);
}

TEST(PowerModel, HotCodeApproachesTdp) {
  const auto a = mach::cluster_a();
  const auto rep = run_and_analyze(a, 36, /*hot=*/true);  // one full socket
  EXPECT_EQ(rep.sockets_used, 1);
  // sph-exa reaches ~98% of the 250 W TDP (Sect. 4.2.1).
  EXPECT_NEAR(rep.chip_w / a.cpu.tdp_per_socket_w, 0.98, 0.02);
}

TEST(PowerModel, MemoryBoundCodeIsCooler) {
  const auto a = mach::cluster_a();
  const auto hot = run_and_analyze(a, 36, true);
  const auto cool = run_and_analyze(a, 36, false);
  EXPECT_LT(cool.chip_w, hot.chip_w);
  // ... but draws more DRAM power (bandwidth-coupled).
  EXPECT_GT(cool.dram_w, hot.dram_w);
}

TEST(PowerModel, DramPowerSaturatesWithBandwidth) {
  const auto a = mach::cluster_a();
  // 18 ranks saturate the domain: DRAM power at its per-domain max.
  const auto rep = run_and_analyze(a, 18, false);
  EXPECT_EQ(rep.domains_used, 1);
  EXPECT_NEAR(rep.dram_w, a.cpu.dram_max_power_per_domain_w, 0.5);
}

TEST(PowerModel, IdleDramFloorForComputeBoundCode) {
  const auto a = mach::cluster_a();
  const auto rep = run_and_analyze(a, 18, true);
  EXPECT_NEAR(rep.dram_w, a.cpu.dram_idle_power_per_domain_w, 0.5);
}

TEST(PowerModel, SecondSocketAddsItsBaseline) {
  const auto a = mach::cluster_a();
  const auto one = run_and_analyze(a, 36, true);
  const auto two = run_and_analyze(a, 72, true);
  EXPECT_EQ(two.sockets_used, 2);
  // Full node ~ 2x the single-socket maximum (Sect. 4.2, Fig. 3(b,d)).
  EXPECT_NEAR(two.chip_w / one.chip_w, 2.0, 0.02);
}

TEST(PowerModel, BaselineDominatesOnModernCpus) {
  const auto a = mach::cluster_a();
  const auto rep = run_and_analyze(a, 1, true);
  // A single busy core: nearly all power is the package baseline.
  EXPECT_GT(a.cpu.idle_power_per_socket_w / rep.chip_w, 0.9);
}

TEST(PowerModel, MpiWaitingStillBurnsPower) {
  const auto a = mach::cluster_a();
  mach::RooflineComputeModel compute(a);
  sim::EngineConfig cfg;
  cfg.nranks = 2;
  cfg.placement = mach::block_placement(a, 2);
  cfg.compute = &compute;
  sim::Engine eng(cfg);
  eng.run([&](sim::Comm& c) -> sim::Task<> {
    if (c.rank() == 0) {
      co_await c.delay(1.0, "slow");
      co_await c.send_bytes(1, 0, 8.0);
    } else {
      co_await c.recv_bytes(0, 0);  // spins for ~1 s
    }
  });
  power::PowerModel pm(a);
  const auto rep = pm.analyze(eng);
  // Baseline + one stalled-ish core + one spinning core.
  const double expected = a.cpu.idle_power_per_socket_w +
                          a.cpu.core_power_stall_w + a.cpu.core_power_mpi_w;
  EXPECT_NEAR(rep.chip_w, expected, 0.6);
}

TEST(ZPlot, MinEnergyAndEdpSelection) {
  std::vector<power::OperatingPoint> pts{
      {1, 1.0, 100.0}, {2, 1.9, 80.0}, {4, 3.5, 70.0}, {8, 4.0, 90.0}};
  EXPECT_EQ(power::min_energy_point(pts), 2u);
  // EDP ~ E/speedup: 100, 42.1, 20.0, 22.5 -> index 2.
  EXPECT_EQ(power::min_edp_point(pts), 2u);
}

TEST(ZPlot, EmptyInputReturnsNpos) {
  const std::vector<power::OperatingPoint> none;
  EXPECT_EQ(power::min_energy_point(none), power::npos);
  EXPECT_EQ(power::min_edp_point(none), power::npos);
}

TEST(ZPlot, ZeroSpeedupPointHasInfiniteEdpAndNeverWins) {
  // A failed/timed-out operating point (speedup 0) must not report EDP 0 and
  // steal the minimum from every real point.
  std::vector<power::OperatingPoint> pts{{1, 0.0, 50.0}, {2, 1.0, 100.0}};
  EXPECT_TRUE(std::isinf(pts[0].edp()));
  EXPECT_EQ(power::min_edp_point(pts), 1u);
  // Energy selection is unaffected: the broken point may still be cheapest.
  EXPECT_EQ(power::min_energy_point(pts), 0u);
}

TEST(ZPlot, RaceToIdleWhenBaselineDominates) {
  // Synthetic Z-plot from the power model itself: energy of a fixed-size
  // memory-bound job vs cores on one ClusterA domain. High baseline power
  // must push the energy minimum to (or next to) the full domain.
  const auto a = mach::cluster_a();
  mach::RooflineComputeModel compute(a);
  std::vector<power::OperatingPoint> pts;
  for (int cores = 1; cores <= 18; ++cores) {
    sim::EngineConfig cfg;
    cfg.nranks = cores;
    cfg.placement = mach::block_placement(a, cores);
    cfg.compute = &compute;
    sim::Engine eng(cfg);
    eng.run([&](sim::Comm& c) -> sim::Task<> {
      sim::KernelWork w;
      w.flops_simd = 1e8;
      w.traffic = {100e9 / c.size(), 100e9 / c.size(), 100e9 / c.size()};
      w.working_set_bytes = 1e12;
      co_await c.compute(w);
    });
    power::PowerModel pm(a);
    const auto rep = pm.analyze(eng);
    pts.push_back({cores, 1.0 / rep.wall_s, rep.total_energy_j()});
  }
  const auto e_min = power::min_energy_point(pts);
  const auto edp_min = power::min_edp_point(pts);
  // Race-to-idle: both minima sit at high core counts and nearly coincide.
  EXPECT_GE(pts[e_min].resources, 5);
  EXPECT_LE(std::abs(static_cast<int>(e_min) - static_cast<int>(edp_min)), 2);
  // Energy varies little across the saturated region (Sect. 4.3.1).
  EXPECT_LT(pts.back().energy_j / pts[e_min].energy_j, 1.15);
}

}  // namespace
