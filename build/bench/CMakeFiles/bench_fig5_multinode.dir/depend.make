# Empty dependencies file for bench_fig5_multinode.
# This may be replaced when dependencies are built.
