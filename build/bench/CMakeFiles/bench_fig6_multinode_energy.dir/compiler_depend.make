# Empty compiler generated dependencies file for bench_fig6_multinode_energy.
# This may be replaced when dependencies are built.
