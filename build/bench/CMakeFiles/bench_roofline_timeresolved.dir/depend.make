# Empty dependencies file for bench_roofline_timeresolved.
# This may be replaced when dependencies are built.
