file(REMOVE_RECURSE
  "CMakeFiles/bench_roofline_timeresolved.dir/bench_roofline_timeresolved.cpp.o"
  "CMakeFiles/bench_roofline_timeresolved.dir/bench_roofline_timeresolved.cpp.o.d"
  "bench_roofline_timeresolved"
  "bench_roofline_timeresolved.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_roofline_timeresolved.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
