# Empty dependencies file for bench_fig3_power.
# This may be replaced when dependencies are built.
