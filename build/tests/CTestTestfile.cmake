# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_simmpi_task[1]_include.cmake")
include("/root/repo/build/tests/test_simmpi_p2p[1]_include.cmake")
include("/root/repo/build/tests/test_simmpi_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_machine_specs[1]_include.cmake")
include("/root/repo/build/tests/test_machine_roofline[1]_include.cmake")
include("/root/repo/build/tests/test_power_model[1]_include.cmake")
include("/root/repo/build/tests/test_perf[1]_include.cmake")
include("/root/repo/build/tests/test_apps_decomp[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_lbm[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_solvers[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_physics[1]_include.cmake")
include("/root/repo/build/tests/test_proxies[1]_include.cmake")
include("/root/repo/build/tests/test_simmpi_collectives_extra[1]_include.cmake")
include("/root/repo/build/tests/test_distributed[1]_include.cmake")
include("/root/repo/build/tests/test_perf_timeseries[1]_include.cmake")
include("/root/repo/build/tests/test_machine_frequency[1]_include.cmake")
include("/root/repo/build/tests/test_core_runner[1]_include.cmake")
include("/root/repo/build/tests/test_paper_shapes[1]_include.cmake")
include("/root/repo/build/tests/test_simmpi_subcomm[1]_include.cmake")
include("/root/repo/build/tests/test_simmpi_robustness[1]_include.cmake")
