# Empty compiler generated dependencies file for test_machine_specs.
# This may be replaced when dependencies are built.
