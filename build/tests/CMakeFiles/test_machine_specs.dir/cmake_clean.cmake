file(REMOVE_RECURSE
  "CMakeFiles/test_machine_specs.dir/machine/test_specs_topology.cpp.o"
  "CMakeFiles/test_machine_specs.dir/machine/test_specs_topology.cpp.o.d"
  "test_machine_specs"
  "test_machine_specs.pdb"
  "test_machine_specs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
