file(REMOVE_RECURSE
  "CMakeFiles/test_simmpi_task.dir/simmpi/test_task.cpp.o"
  "CMakeFiles/test_simmpi_task.dir/simmpi/test_task.cpp.o.d"
  "test_simmpi_task"
  "test_simmpi_task.pdb"
  "test_simmpi_task[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simmpi_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
