# Empty dependencies file for test_simmpi_task.
# This may be replaced when dependencies are built.
