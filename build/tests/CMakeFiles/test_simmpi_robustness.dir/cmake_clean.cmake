file(REMOVE_RECURSE
  "CMakeFiles/test_simmpi_robustness.dir/simmpi/test_robustness.cpp.o"
  "CMakeFiles/test_simmpi_robustness.dir/simmpi/test_robustness.cpp.o.d"
  "test_simmpi_robustness"
  "test_simmpi_robustness.pdb"
  "test_simmpi_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simmpi_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
