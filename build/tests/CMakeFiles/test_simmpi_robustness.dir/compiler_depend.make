# Empty compiler generated dependencies file for test_simmpi_robustness.
# This may be replaced when dependencies are built.
