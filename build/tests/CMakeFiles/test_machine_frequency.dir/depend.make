# Empty dependencies file for test_machine_frequency.
# This may be replaced when dependencies are built.
