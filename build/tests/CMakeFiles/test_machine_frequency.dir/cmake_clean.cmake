file(REMOVE_RECURSE
  "CMakeFiles/test_machine_frequency.dir/machine/test_frequency.cpp.o"
  "CMakeFiles/test_machine_frequency.dir/machine/test_frequency.cpp.o.d"
  "test_machine_frequency"
  "test_machine_frequency.pdb"
  "test_machine_frequency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
