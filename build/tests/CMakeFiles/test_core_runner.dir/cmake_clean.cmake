file(REMOVE_RECURSE
  "CMakeFiles/test_core_runner.dir/core/test_runner.cpp.o"
  "CMakeFiles/test_core_runner.dir/core/test_runner.cpp.o.d"
  "test_core_runner"
  "test_core_runner.pdb"
  "test_core_runner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
