# Empty dependencies file for test_machine_roofline.
# This may be replaced when dependencies are built.
