file(REMOVE_RECURSE
  "CMakeFiles/test_machine_roofline.dir/machine/test_roofline.cpp.o"
  "CMakeFiles/test_machine_roofline.dir/machine/test_roofline.cpp.o.d"
  "test_machine_roofline"
  "test_machine_roofline.pdb"
  "test_machine_roofline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
