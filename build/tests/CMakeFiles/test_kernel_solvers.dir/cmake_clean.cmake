file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_solvers.dir/apps/test_kernel_solvers.cpp.o"
  "CMakeFiles/test_kernel_solvers.dir/apps/test_kernel_solvers.cpp.o.d"
  "test_kernel_solvers"
  "test_kernel_solvers.pdb"
  "test_kernel_solvers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
