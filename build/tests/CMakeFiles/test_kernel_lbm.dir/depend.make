# Empty dependencies file for test_kernel_lbm.
# This may be replaced when dependencies are built.
