file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_lbm.dir/apps/test_kernel_lbm.cpp.o"
  "CMakeFiles/test_kernel_lbm.dir/apps/test_kernel_lbm.cpp.o.d"
  "test_kernel_lbm"
  "test_kernel_lbm.pdb"
  "test_kernel_lbm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_lbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
