file(REMOVE_RECURSE
  "CMakeFiles/test_simmpi_subcomm.dir/simmpi/test_subcomm.cpp.o"
  "CMakeFiles/test_simmpi_subcomm.dir/simmpi/test_subcomm.cpp.o.d"
  "test_simmpi_subcomm"
  "test_simmpi_subcomm.pdb"
  "test_simmpi_subcomm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simmpi_subcomm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
