# Empty dependencies file for test_simmpi_subcomm.
# This may be replaced when dependencies are built.
