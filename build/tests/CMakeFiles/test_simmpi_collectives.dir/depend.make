# Empty dependencies file for test_simmpi_collectives.
# This may be replaced when dependencies are built.
