file(REMOVE_RECURSE
  "CMakeFiles/test_simmpi_collectives_extra.dir/simmpi/test_collectives_extra.cpp.o"
  "CMakeFiles/test_simmpi_collectives_extra.dir/simmpi/test_collectives_extra.cpp.o.d"
  "test_simmpi_collectives_extra"
  "test_simmpi_collectives_extra.pdb"
  "test_simmpi_collectives_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simmpi_collectives_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
