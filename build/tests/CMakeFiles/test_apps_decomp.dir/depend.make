# Empty dependencies file for test_apps_decomp.
# This may be replaced when dependencies are built.
