file(REMOVE_RECURSE
  "CMakeFiles/test_apps_decomp.dir/apps/test_decomp.cpp.o"
  "CMakeFiles/test_apps_decomp.dir/apps/test_decomp.cpp.o.d"
  "test_apps_decomp"
  "test_apps_decomp.pdb"
  "test_apps_decomp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
