# Empty dependencies file for test_proxies.
# This may be replaced when dependencies are built.
