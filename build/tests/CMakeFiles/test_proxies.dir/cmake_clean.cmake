file(REMOVE_RECURSE
  "CMakeFiles/test_proxies.dir/apps/test_proxies.cpp.o"
  "CMakeFiles/test_proxies.dir/apps/test_proxies.cpp.o.d"
  "test_proxies"
  "test_proxies.pdb"
  "test_proxies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proxies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
