# Empty dependencies file for test_kernel_physics.
# This may be replaced when dependencies are built.
