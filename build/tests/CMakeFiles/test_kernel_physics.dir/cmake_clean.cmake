file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_physics.dir/apps/test_kernel_physics.cpp.o"
  "CMakeFiles/test_kernel_physics.dir/apps/test_kernel_physics.cpp.o.d"
  "test_kernel_physics"
  "test_kernel_physics.pdb"
  "test_kernel_physics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
