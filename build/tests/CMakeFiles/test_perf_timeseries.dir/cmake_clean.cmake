file(REMOVE_RECURSE
  "CMakeFiles/test_perf_timeseries.dir/perf/test_timeseries.cpp.o"
  "CMakeFiles/test_perf_timeseries.dir/perf/test_timeseries.cpp.o.d"
  "test_perf_timeseries"
  "test_perf_timeseries.pdb"
  "test_perf_timeseries[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
