file(REMOVE_RECURSE
  "CMakeFiles/spechpc_machine.dir/roofline.cpp.o"
  "CMakeFiles/spechpc_machine.dir/roofline.cpp.o.d"
  "CMakeFiles/spechpc_machine.dir/specs.cpp.o"
  "CMakeFiles/spechpc_machine.dir/specs.cpp.o.d"
  "CMakeFiles/spechpc_machine.dir/topology.cpp.o"
  "CMakeFiles/spechpc_machine.dir/topology.cpp.o.d"
  "libspechpc_machine.a"
  "libspechpc_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spechpc_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
