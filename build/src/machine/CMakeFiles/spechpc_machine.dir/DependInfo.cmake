
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/roofline.cpp" "src/machine/CMakeFiles/spechpc_machine.dir/roofline.cpp.o" "gcc" "src/machine/CMakeFiles/spechpc_machine.dir/roofline.cpp.o.d"
  "/root/repo/src/machine/specs.cpp" "src/machine/CMakeFiles/spechpc_machine.dir/specs.cpp.o" "gcc" "src/machine/CMakeFiles/spechpc_machine.dir/specs.cpp.o.d"
  "/root/repo/src/machine/topology.cpp" "src/machine/CMakeFiles/spechpc_machine.dir/topology.cpp.o" "gcc" "src/machine/CMakeFiles/spechpc_machine.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simmpi/CMakeFiles/spechpc_simmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
