file(REMOVE_RECURSE
  "libspechpc_machine.a"
)
