# Empty compiler generated dependencies file for spechpc_machine.
# This may be replaced when dependencies are built.
