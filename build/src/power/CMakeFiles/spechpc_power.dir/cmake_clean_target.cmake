file(REMOVE_RECURSE
  "libspechpc_power.a"
)
