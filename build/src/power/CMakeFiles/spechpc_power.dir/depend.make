# Empty dependencies file for spechpc_power.
# This may be replaced when dependencies are built.
