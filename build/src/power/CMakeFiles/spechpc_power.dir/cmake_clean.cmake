file(REMOVE_RECURSE
  "CMakeFiles/spechpc_power.dir/power_model.cpp.o"
  "CMakeFiles/spechpc_power.dir/power_model.cpp.o.d"
  "libspechpc_power.a"
  "libspechpc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spechpc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
