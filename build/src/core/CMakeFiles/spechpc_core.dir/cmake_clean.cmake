file(REMOVE_RECURSE
  "CMakeFiles/spechpc_core.dir/runner.cpp.o"
  "CMakeFiles/spechpc_core.dir/runner.cpp.o.d"
  "CMakeFiles/spechpc_core.dir/suite.cpp.o"
  "CMakeFiles/spechpc_core.dir/suite.cpp.o.d"
  "libspechpc_core.a"
  "libspechpc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spechpc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
