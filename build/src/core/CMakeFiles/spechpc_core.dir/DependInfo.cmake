
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/runner.cpp" "src/core/CMakeFiles/spechpc_core.dir/runner.cpp.o" "gcc" "src/core/CMakeFiles/spechpc_core.dir/runner.cpp.o.d"
  "/root/repo/src/core/suite.cpp" "src/core/CMakeFiles/spechpc_core.dir/suite.cpp.o" "gcc" "src/core/CMakeFiles/spechpc_core.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/spechpc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/spechpc_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/spechpc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/spechpc_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/spechpc_simmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
