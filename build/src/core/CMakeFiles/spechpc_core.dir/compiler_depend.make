# Empty compiler generated dependencies file for spechpc_core.
# This may be replaced when dependencies are built.
