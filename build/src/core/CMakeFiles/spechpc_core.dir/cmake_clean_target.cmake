file(REMOVE_RECURSE
  "libspechpc_core.a"
)
