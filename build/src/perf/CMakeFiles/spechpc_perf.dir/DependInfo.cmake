
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/tables.cpp" "src/perf/CMakeFiles/spechpc_perf.dir/tables.cpp.o" "gcc" "src/perf/CMakeFiles/spechpc_perf.dir/tables.cpp.o.d"
  "/root/repo/src/perf/timeline_render.cpp" "src/perf/CMakeFiles/spechpc_perf.dir/timeline_render.cpp.o" "gcc" "src/perf/CMakeFiles/spechpc_perf.dir/timeline_render.cpp.o.d"
  "/root/repo/src/perf/timeseries.cpp" "src/perf/CMakeFiles/spechpc_perf.dir/timeseries.cpp.o" "gcc" "src/perf/CMakeFiles/spechpc_perf.dir/timeseries.cpp.o.d"
  "/root/repo/src/perf/trace_export.cpp" "src/perf/CMakeFiles/spechpc_perf.dir/trace_export.cpp.o" "gcc" "src/perf/CMakeFiles/spechpc_perf.dir/trace_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simmpi/CMakeFiles/spechpc_simmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
