# Empty dependencies file for spechpc_perf.
# This may be replaced when dependencies are built.
