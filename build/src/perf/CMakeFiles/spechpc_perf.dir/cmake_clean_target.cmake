file(REMOVE_RECURSE
  "libspechpc_perf.a"
)
