file(REMOVE_RECURSE
  "CMakeFiles/spechpc_perf.dir/tables.cpp.o"
  "CMakeFiles/spechpc_perf.dir/tables.cpp.o.d"
  "CMakeFiles/spechpc_perf.dir/timeline_render.cpp.o"
  "CMakeFiles/spechpc_perf.dir/timeline_render.cpp.o.d"
  "CMakeFiles/spechpc_perf.dir/timeseries.cpp.o"
  "CMakeFiles/spechpc_perf.dir/timeseries.cpp.o.d"
  "CMakeFiles/spechpc_perf.dir/trace_export.cpp.o"
  "CMakeFiles/spechpc_perf.dir/trace_export.cpp.o.d"
  "libspechpc_perf.a"
  "libspechpc_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spechpc_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
