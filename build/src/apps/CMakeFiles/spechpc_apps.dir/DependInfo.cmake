
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_base.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/app_base.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/app_base.cpp.o.d"
  "/root/repo/src/apps/cloverleaf/cloverleaf_kernel.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/cloverleaf/cloverleaf_kernel.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/cloverleaf/cloverleaf_kernel.cpp.o.d"
  "/root/repo/src/apps/cloverleaf/cloverleaf_proxy.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/cloverleaf/cloverleaf_proxy.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/cloverleaf/cloverleaf_proxy.cpp.o.d"
  "/root/repo/src/apps/decomp.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/decomp.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/decomp.cpp.o.d"
  "/root/repo/src/apps/distributed/distributed_cloverleaf.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/distributed/distributed_cloverleaf.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/distributed/distributed_cloverleaf.cpp.o.d"
  "/root/repo/src/apps/distributed/distributed_heat.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/distributed/distributed_heat.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/distributed/distributed_heat.cpp.o.d"
  "/root/repo/src/apps/distributed/distributed_lbm.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/distributed/distributed_lbm.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/distributed/distributed_lbm.cpp.o.d"
  "/root/repo/src/apps/hpgmg/hpgmg_kernel.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/hpgmg/hpgmg_kernel.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/hpgmg/hpgmg_kernel.cpp.o.d"
  "/root/repo/src/apps/hpgmg/hpgmg_proxy.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/hpgmg/hpgmg_proxy.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/hpgmg/hpgmg_proxy.cpp.o.d"
  "/root/repo/src/apps/lbm/lbm_kernel.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/lbm/lbm_kernel.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/lbm/lbm_kernel.cpp.o.d"
  "/root/repo/src/apps/lbm/lbm_proxy.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/lbm/lbm_proxy.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/lbm/lbm_proxy.cpp.o.d"
  "/root/repo/src/apps/minisweep/minisweep_kernel.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/minisweep/minisweep_kernel.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/minisweep/minisweep_kernel.cpp.o.d"
  "/root/repo/src/apps/minisweep/minisweep_proxy.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/minisweep/minisweep_proxy.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/minisweep/minisweep_proxy.cpp.o.d"
  "/root/repo/src/apps/pot3d/pot3d_kernel.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/pot3d/pot3d_kernel.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/pot3d/pot3d_kernel.cpp.o.d"
  "/root/repo/src/apps/pot3d/pot3d_proxy.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/pot3d/pot3d_proxy.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/pot3d/pot3d_proxy.cpp.o.d"
  "/root/repo/src/apps/soma/soma_kernel.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/soma/soma_kernel.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/soma/soma_kernel.cpp.o.d"
  "/root/repo/src/apps/soma/soma_proxy.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/soma/soma_proxy.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/soma/soma_proxy.cpp.o.d"
  "/root/repo/src/apps/sphexa/sphexa_kernel.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/sphexa/sphexa_kernel.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/sphexa/sphexa_kernel.cpp.o.d"
  "/root/repo/src/apps/sphexa/sphexa_proxy.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/sphexa/sphexa_proxy.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/sphexa/sphexa_proxy.cpp.o.d"
  "/root/repo/src/apps/tealeaf/tealeaf_kernel.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/tealeaf/tealeaf_kernel.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/tealeaf/tealeaf_kernel.cpp.o.d"
  "/root/repo/src/apps/tealeaf/tealeaf_proxy.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/tealeaf/tealeaf_proxy.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/tealeaf/tealeaf_proxy.cpp.o.d"
  "/root/repo/src/apps/weather/weather_kernel.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/weather/weather_kernel.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/weather/weather_kernel.cpp.o.d"
  "/root/repo/src/apps/weather/weather_proxy.cpp" "src/apps/CMakeFiles/spechpc_apps.dir/weather/weather_proxy.cpp.o" "gcc" "src/apps/CMakeFiles/spechpc_apps.dir/weather/weather_proxy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simmpi/CMakeFiles/spechpc_simmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
