# Empty compiler generated dependencies file for spechpc_apps.
# This may be replaced when dependencies are built.
