file(REMOVE_RECURSE
  "libspechpc_apps.a"
)
