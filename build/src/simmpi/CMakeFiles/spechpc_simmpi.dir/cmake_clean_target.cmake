file(REMOVE_RECURSE
  "libspechpc_simmpi.a"
)
