file(REMOVE_RECURSE
  "CMakeFiles/spechpc_simmpi.dir/collectives.cpp.o"
  "CMakeFiles/spechpc_simmpi.dir/collectives.cpp.o.d"
  "CMakeFiles/spechpc_simmpi.dir/engine.cpp.o"
  "CMakeFiles/spechpc_simmpi.dir/engine.cpp.o.d"
  "libspechpc_simmpi.a"
  "libspechpc_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spechpc_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
