# Empty compiler generated dependencies file for spechpc_simmpi.
# This may be replaced when dependencies are built.
