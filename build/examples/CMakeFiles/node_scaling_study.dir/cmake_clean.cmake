file(REMOVE_RECURSE
  "CMakeFiles/node_scaling_study.dir/node_scaling_study.cpp.o"
  "CMakeFiles/node_scaling_study.dir/node_scaling_study.cpp.o.d"
  "node_scaling_study"
  "node_scaling_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_scaling_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
