# Empty compiler generated dependencies file for node_scaling_study.
# This may be replaced when dependencies are built.
