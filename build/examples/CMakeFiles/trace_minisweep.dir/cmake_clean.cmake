file(REMOVE_RECURSE
  "CMakeFiles/trace_minisweep.dir/trace_minisweep.cpp.o"
  "CMakeFiles/trace_minisweep.dir/trace_minisweep.cpp.o.d"
  "trace_minisweep"
  "trace_minisweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_minisweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
