# Empty compiler generated dependencies file for trace_minisweep.
# This may be replaced when dependencies are built.
