file(REMOVE_RECURSE
  "CMakeFiles/spechpc_cli.dir/spechpc_cli.cpp.o"
  "CMakeFiles/spechpc_cli.dir/spechpc_cli.cpp.o.d"
  "spechpc_cli"
  "spechpc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spechpc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
