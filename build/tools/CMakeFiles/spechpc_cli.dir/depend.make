# Empty dependencies file for spechpc_cli.
# This may be replaced when dependencies are built.
